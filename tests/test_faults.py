"""Tests for the network-imperfection fault layer (repro.faults).

Three tiers:

* unit — the retry/backoff schedule is a deterministic pure function,
  and the idempotency-token caches on the MN and the master dedup
  retransmissions without re-executing;
* acceptance — the mixed campaign (loss + duplication + a transient
  partition) completes with zero hung ops, zero leaked blocks, and a
  KV-linearizable history; the same campaign with retries disabled
  demonstrably fails, proving the resilience layer is load-bearing;
* property — Hypothesis generates small fault plans over random op
  programs and asserts every run is *sound* (no hangs, no leaks,
  linearizable) even when individual ops fail with typed errors.

The long random sweep is marked ``campaign`` and excluded from tier-1;
run it with ``pytest -m campaign``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FuseeCluster
from repro.faults import (
    CN,
    CAMPAIGNS,
    FaultInjector,
    FaultPlan,
    GrayNode,
    LinkFault,
    NO_RETRY,
    Partition,
    RetryPolicy,
    run_campaign,
)
from repro.rdma.memory_node import MemoryNode
from repro.rdma.verbs import CasOp, FaaOp
from repro.sim import Environment
from tests.conftest import run, small_config


# --------------------------------------------------------------------------
# Retry / backoff policy
# --------------------------------------------------------------------------
def test_backoff_schedule_is_deterministic_and_exponential():
    policy = RetryPolicy(backoff_base_us=2.0, backoff_cap_us=64.0,
                         jitter_frac=0.5)
    # same (attempt, u) -> same delay, every time
    for attempt in range(1, 8):
        for u in (0.0, 0.25, 0.999):
            assert policy.backoff_us(attempt, u) == \
                policy.backoff_us(attempt, u)
    # with u=0 (no jitter taken) the schedule doubles until the cap
    undithered = [policy.backoff_us(a, 0.0) for a in range(1, 8)]
    assert undithered == [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 64.0]


def test_backoff_cap_and_jitter_bounds():
    policy = RetryPolicy(backoff_base_us=3.0, backoff_cap_us=50.0,
                         jitter_frac=0.5)
    for attempt in range(1, 20):
        for u in (0.0, 0.1, 0.5, 0.999999):
            delay = policy.backoff_us(attempt, u)
            assert delay <= policy.backoff_cap_us
            # jitter shaves off at most jitter_frac of the capped delay
            full = policy.backoff_us(attempt, 0.0)
            assert delay >= full * (1.0 - policy.jitter_frac)


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter_frac=1.5)
    with pytest.raises(ValueError):
        RetryPolicy().backoff_us(0)


def test_budget_covers_all_attempts():
    policy = RetryPolicy(max_attempts=4, verb_timeout_us=10.0,
                         backoff_base_us=2.0, backoff_cap_us=64.0,
                         jitter_frac=0.5)
    # 4 timeouts + 3 undithered backoffs (2 + 4 + 8)
    assert policy.budget_us(rpc=False) == 4 * 10.0 + 2.0 + 4.0 + 8.0
    assert NO_RETRY.budget_us(rpc=False) == NO_RETRY.verb_timeout_us


# --------------------------------------------------------------------------
# Idempotency tokens
# --------------------------------------------------------------------------
def _bare_mn():
    env = Environment()
    return MemoryNode(env, mn_id=0, capacity=4096)


def test_mn_verb_dedup_never_double_applies():
    mn = _bare_mn()
    faa = FaaOp(mn_id=0, addr=0, delta=5)
    value, deduped = mn.apply_once(token=101, op=faa)
    assert (value, deduped) == (0, False)
    # retransmission with the same token: cached result, memory untouched
    value, deduped = mn.apply_once(token=101, op=faa)
    assert (value, deduped) == (0, True)
    assert mn.apply(FaaOp(mn_id=0, addr=0, delta=0)) == 5  # applied exactly once
    # a *new* token is a new operation
    value, deduped = mn.apply_once(token=102, op=FaaOp(mn_id=0, addr=0, delta=5))
    assert (value, deduped) == (5, False)


def test_mn_cas_dedup_returns_first_outcome():
    mn = _bare_mn()
    cas = CasOp(mn_id=0, addr=8, expected=0, swap=7)
    old, deduped = mn.apply_once(token=7, op=cas)
    assert (old, deduped) == (0, False)
    # the re-delivery must NOT observe the new value and report failure
    old, deduped = mn.apply_once(token=7, op=cas)
    assert (old, deduped) == (0, True)


def test_mn_rpc_reply_cache_round_trip_and_eviction():
    mn = _bare_mn()
    assert mn.rpc_reply_cached(1) is None
    mn.cache_rpc_reply(1, {"ok": True, "block": 3})
    assert mn.rpc_reply_cached(1) == ({"ok": True, "block": 3},)
    mn.dedup_capacity = 4
    for token in range(2, 10):
        mn.cache_rpc_reply(token, {"ok": True})
    assert mn.rpc_reply_cached(1) is None      # oldest evicted
    assert mn.rpc_reply_cached(9) is not None


def test_master_rpc_dedup_runs_handler_once():
    cluster = FuseeCluster(small_config())
    master = cluster.master
    calls = []

    def handler(tag):
        calls.append(tag)
        yield cluster.env.timeout(1.0)
        return f"reply-{tag}"

    assert run(cluster, master._dedup_call(500, handler("a"))) == "reply-a"
    # retransmission: cached reply, handler generator closed unentered
    assert run(cluster, master._dedup_call(500, handler("b"))) == "reply-a"
    assert calls == ["a"]
    assert master.rpc_dedup_hits == 1
    # token=None bypasses dedup entirely (fault layer not installed)
    assert run(cluster, master._dedup_call(None, handler("c"))) == "reply-c"
    assert run(cluster, master._dedup_call(None, handler("d"))) == "reply-d"
    assert calls == ["a", "c", "d"]


# --------------------------------------------------------------------------
# Fault injector draws
# --------------------------------------------------------------------------
def test_fates_are_deterministic_and_window_scoped():
    plan = FaultPlan(link_faults=[
        LinkFault(drop_p=0.5, dup_p=0.3, jitter_us=1.0,
                  start_us=100.0, end_us=200.0)], seed=42)
    inj = FaultInjector(plan)
    ident = ("write", 1, 2, 3)
    inside = [inj.fate(ident, 0, attempt, 150.0) for attempt in (1, 2, 3)]
    assert inside == [inj.fate(ident, 0, a, 150.0) for a in (1, 2, 3)]
    # outside the window every delivery is clean
    clean = inj.fate(ident, 0, 1, 250.0)
    assert not (clean.drop_request or clean.drop_reply or clean.duplicate)
    # attempts draw independent fates (retries can escape a bad draw)
    assert len({(f.drop_request, f.drop_reply, f.duplicate, f.backoff_u)
                for f in inside}) > 1


def test_partition_topology_queries():
    plan = FaultPlan(partitions=[
        Partition(a=CN, b=1, start_us=0.0, end_us=50.0,
                  drop_requests=True, drop_replies=False),
        Partition(a=0, b=2, start_us=0.0, end_us=50.0)], seed=0)
    inj = FaultInjector(plan)
    assert inj.cn_partition(1, 10.0) == (True, False)   # asymmetric
    assert inj.cn_partition(1, 60.0) == (False, False)  # healed
    assert inj.cn_partition(0, 10.0) == (False, False)  # other MN untouched
    assert not inj.mn_reachable(0, 2, 10.0)
    assert inj.mn_reachable(0, 2, 60.0)
    assert inj.mn_reachable(1, 2, 10.0)


def test_gray_node_service_factor():
    plan = FaultPlan(gray_nodes=[
        GrayNode(mn_id=1, factor=4.0, start_us=10.0, end_us=20.0)], seed=0)
    inj = FaultInjector(plan)
    assert inj.service_factor(1, 15.0) == 4.0
    assert inj.service_factor(1, 25.0) == 1.0
    assert inj.service_factor(0, 15.0) == 1.0


# --------------------------------------------------------------------------
# Port-scoped faults on multi-queue MNs
# --------------------------------------------------------------------------
class TestPortScopedFaults:
    """A fault pinned to one NIC port of a multi-port MN must hit only
    deliveries hashed onto that port, and retries must escape it by
    re-hashing onto a live port."""

    def test_partition_scoped_to_port_misses_other_ports(self):
        plan = FaultPlan(partitions=[
            Partition(a=CN, b=1, start_us=0.0, end_us=50.0, port=2)],
            seed=0)
        inj = FaultInjector(plan)
        assert inj.cn_partition(1, 10.0, port=2) == (True, True)
        assert inj.cn_partition(1, 10.0, port=0) == (False, False)
        # a port-scoped fault never hits a port-less (single-queue) path
        assert inj.cn_partition(1, 10.0) == (False, False)
        # an unscoped partition hits every port
        whole = FaultInjector(FaultPlan(partitions=[
            Partition(a=CN, b=1, start_us=0.0, end_us=50.0)], seed=0))
        assert whole.cn_partition(1, 10.0, port=3) == (True, True)

    def test_gray_scoped_to_port_slows_only_that_port(self):
        plan = FaultPlan(gray_nodes=[
            GrayNode(mn_id=0, factor=5.0, start_us=0.0, end_us=100.0,
                     port=1)], seed=0)
        inj = FaultInjector(plan)
        assert inj.service_factor(0, 50.0, port=1) == 5.0
        assert inj.service_factor(0, 50.0, port=0) == 1.0
        assert inj.service_factor(0, 50.0) == 1.0

    def test_link_fault_scoped_to_port_draws_only_there(self):
        plan = FaultPlan(link_faults=[
            LinkFault(drop_p=1.0, start_us=0.0, end_us=100.0, port=0)],
            seed=7)
        inj = FaultInjector(plan)
        hit = inj.fate(("w", 1), 0, 1, 10.0, port=0)
        assert hit.drop_request and hit.drop_reply
        miss = inj.fate(("w", 1), 0, 1, 10.0, port=1)
        assert not (miss.drop_request or miss.drop_reply)

    def test_port_never_enters_fate_hash_keys(self):
        """Port only *scopes* faults: on an unscoped plan the drawn fate
        is identical whatever port carried the delivery, so single-port
        campaigns replay byte-identically under the multi-queue model."""
        plan = FaultPlan(link_faults=[
            LinkFault(drop_p=0.5, dup_p=0.3, jitter_us=1.0,
                      start_us=0.0, end_us=100.0)], seed=11)
        inj = FaultInjector(plan)
        for attempt in (1, 2, 3):
            fates = {inj.fate(("x", 4), 0, attempt, 20.0, port=p)
                     for p in (None, 0, 1, 2, 3)}
            assert len(fates) == 1

    def test_mn_mirror_traffic_ignores_port_scoped_partitions(self):
        plan = FaultPlan(partitions=[
            Partition(a=0, b=1, start_us=0.0, end_us=50.0, port=1)],
            seed=0)
        inj = FaultInjector(plan)
        assert inj.mn_reachable(0, 1, 10.0)

    def test_verb_retry_rehashes_to_live_port(self):
        """Substrate: the QP's home tx port is partitioned; the retry
        must land on a different port and succeed without exhausting
        the budget (transport retries, zero verb timeouts)."""
        from repro.rdma import Fabric, FabricConfig
        from repro.rdma.verbs import ReadOp

        env = Environment()
        fab = Fabric(env, FabricConfig())
        node = MemoryNode(env, 0, capacity=4096, num_ports=4)
        fab.add_node(node)
        qp = 5
        home = fab._port_for(node, True, qp)[0]
        fab.injector = FaultInjector(
            FaultPlan(partitions=[
                Partition(a=CN, b=0, start_us=0.0, end_us=100_000.0,
                          port=home)], seed=0),
            retry=_SHORT_RETRY)

        def proc():
            return (yield fab.post([ReadOp(0, 0, 8)], qp=qp))

        comps = env.run(until=env.process(proc()))
        assert not comps[0].failed
        assert fab.stats.transport_retries >= 1
        assert fab.stats.verb_timeouts == 0
        # the retry's port differs from the partitioned home port
        assert fab._port_for(node, True, qp, salt=1)[0] != home

    def test_rpc_retry_rehashes_to_live_port(self):
        from repro.rdma import Fabric, FabricConfig

        env = Environment()
        fab = Fabric(env, FabricConfig())
        node = MemoryNode(env, 0, capacity=4096, num_ports=4,
                          rpc_shards=2)
        node.register_rpc("ping", lambda payload: ({"pong": True}, 0.5))
        fab.add_node(node)
        qp = 9
        home = fab._port_for(node, False, qp)[0]
        fab.injector = FaultInjector(
            FaultPlan(partitions=[
                Partition(a=CN, b=0, start_us=0.0, end_us=100_000.0,
                          port=home)], seed=0),
            retry=_SHORT_RETRY)

        def proc():
            return (yield fab.rpc(0, "ping", {}, qp=qp))

        reply = env.run(until=env.process(proc()))
        assert reply == {"pong": True}
        assert fab.stats.rpc_retries >= 1
        assert fab.stats.rpc_timeouts == 0

    def test_single_port_partition_campaign_stays_clean(self):
        """Acceptance: partition one NIC port of a multi-port MN
        mid-campaign — every op must finish, blocks balance, and the
        history linearizes (retries escape via re-hash)."""
        start = 400.0
        plan = FaultPlan(partitions=[
            Partition(a=CN, b=1, start_us=start, end_us=start + 3000.0,
                      port=0)], seed=0)
        report = run_campaign(seed=2, plan=plan, clients=3,
                              ops_per_client=50, nic_ports=4,
                              rpc_shards=2)
        assert report.hung_ops == 0
        assert not report.exceptions
        assert report.balance_ok, report.render()
        assert report.linearizable, report.violation
        assert report.clean, report.render()

    def test_gray_port_campaign_stays_clean(self):
        plan = FaultPlan(gray_nodes=[
            GrayNode(mn_id=0, factor=6.0, start_us=300.0, end_us=2500.0,
                     port=1)], seed=0)
        report = run_campaign(seed=4, plan=plan, clients=3,
                              ops_per_client=50, nic_ports=4,
                              rpc_shards=2)
        assert report.clean, report.render()


# --------------------------------------------------------------------------
# Campaign acceptance: mixed faults, with and without the resilience layer
# --------------------------------------------------------------------------
def test_mixed_campaign_with_retries_is_clean():
    report = run_campaign("mixed", seed=0, clients=3, ops_per_client=60)
    assert report.hung_ops == 0
    assert not report.exceptions
    assert report.balance_ok, \
        f"alloc leak: {report.blocks_outstanding} != {report.blocks_owned}"
    assert report.linearizable, report.violation
    assert report.ops_failed == 0 and report.clean
    # the faults actually fired and the layer actually retried
    assert report.fabric["dropped_requests"] + \
        report.fabric["dropped_replies"] > 0
    assert report.fabric["transport_retries"] > 0


def test_mixed_campaign_without_retries_fails():
    """Negative control: the same campaign, one-shot transport."""
    report = run_campaign("mixed", seed=0, retries=False,
                          clients=3, ops_per_client=60)
    assert report.hung_ops == 0          # failures are typed, never hangs
    assert not report.exceptions
    assert not report.clean
    # without retransmission+dedup, ops fail outright and a granted-but-
    # unacknowledged ALLOC leaks a block
    assert report.ops_failed > 0 or not report.balance_ok


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_every_named_campaign_is_sound(name):
    report = run_campaign(name, seed=1, clients=2, ops_per_client=40)
    assert report.sound, report.render()


# --------------------------------------------------------------------------
# SWARM under faults: broadcasts, fixups, validated reads on a lossy fabric
# --------------------------------------------------------------------------
class TestSwarmCampaigns:
    """The in-place broadcast protocol must stay sound when its one-batch
    broadcast actually spans replicas (``index_replication=2``) and the
    fabric misbehaves: every campaign history linearizes, no op hangs,
    and allocation balances — the same acceptance bar as SNAPSHOT."""

    def test_partition_heal_campaign_is_sound(self):
        report = run_campaign("partition-heal", seed=3, clients=3,
                              ops_per_client=50, replication="swarm",
                              index_replication=2)
        assert report.sound, report.render()

    def test_gray_node_campaign_is_sound(self):
        report = run_campaign("gray", seed=5, clients=3,
                              ops_per_client=50, replication="swarm",
                              index_replication=2)
        assert report.sound, report.render()

    def test_duplicated_broadcast_writes_never_double_apply(self):
        """Verb-level duplication across the whole campaign window: the
        MN-side dedup layer must absorb replayed broadcast CASes (a
        re-delivered CAS(v_old→v_new) after a fixup would resurrect a
        stale round), keeping the history linearizable and *clean*."""
        plan = FaultPlan(link_faults=[
            LinkFault(dup_p=0.25, start_us=200.0, end_us=4000.0)], seed=0)
        report = run_campaign(seed=7, plan=plan, clients=3,
                              ops_per_client=50, replication="swarm",
                              index_replication=2)
        assert report.fabric.get("duplicates", 0) > 0, report.render()
        assert report.clean, report.render()

    def test_mixed_campaign_is_sound(self):
        report = run_campaign("mixed", seed=2, clients=3,
                              ops_per_client=60, replication="swarm",
                              index_replication=2)
        assert report.sound, report.render()


# --------------------------------------------------------------------------
# Read-spreading under faults: the selected replica goes dark mid-read
# --------------------------------------------------------------------------
_SHORT_RETRY = RetryPolicy(max_attempts=2, verb_timeout_us=8.0,
                           rpc_timeout_us=40.0, backoff_base_us=2.0,
                           backoff_cap_us=8.0, jitter_frac=0.0)


def _spread_cluster(read_spread):
    from repro.obs import Tracer

    tracer = Tracer()
    cluster = FuseeCluster(small_config(), tracer=tracer)
    client = cluster.new_client(read_spread=read_spread)
    return cluster, client, tracer


def _key_with_offnode_kv_primary(cluster, client):
    """A warmed key whose KV primary replica is NOT its index-bucket MN,
    plus that replica's id — partitioning the data replica then leaves
    the fallback bucket path reachable."""
    race, stats = cluster.race, cluster.fabric.stats
    for i in range(24):
        key = f"spread{i}".encode()
        assert cluster.run_op(client.insert(key, b"v0")).ok
        index_mn = race.bucket_read_ops(race.key_meta(key),
                                        replica=0)[0].mn_id
        assert cluster.run_op(client.search(key)).ok  # warm the cache
        before = dict(stats.kv_replica_reads)
        assert cluster.run_op(client.search(key)).ok
        after = stats.kv_replica_reads
        served = [mn for mn in after if after[mn] != before.get(mn, 0)]
        if served == [mn for mn in served if mn != index_mn] \
                and len(served) == 1:
            return key, served[0]
    raise AssertionError("no key with off-node KV primary found")


def test_partitioned_read_replica_retry_lands_on_another_replica():
    """The replica serving a key's READs gets partitioned; the retry must
    land on a different replica, the op must succeed, and the recorded
    history must stay linearizable."""
    from repro.check.history import kv_ops_from_spans
    from repro.core.linearizability import check_kv_linearizable

    cluster, client, tracer = _spread_cluster("least_loaded")
    stats = cluster.fabric.stats
    key, kv_mn = _key_with_offnode_kv_primary(cluster, client)

    start = cluster.env.now
    cluster.install_faults(FaultPlan(partitions=[
        Partition(a=CN, b=kv_mn, start_us=start, end_us=start + 2000.0,
                  drop_requests=True, drop_replies=True)], seed=0),
        retry=_SHORT_RETRY)
    before = dict(stats.kv_replica_reads)
    assert cluster.run_op(client.search(key)).ok
    after = stats.kv_replica_reads
    # the dark replica was tried first (idle least_loaded == primary) ...
    assert after.get(kv_mn, 0) - before.get(kv_mn, 0) >= 1
    # ... and the retry read a *different* replica
    assert sum(after.get(mn, 0) - before.get(mn, 0)
               for mn in after if mn != kv_mn) >= 1

    cluster.install_faults(None)  # heal, then keep operating
    assert cluster.run_op(client.update(key, b"v1")).ok
    assert cluster.run_op(client.search(key)).ok
    violation = check_kv_linearizable(kv_ops_from_spans(tracer.spans))
    assert violation is None, violation


def test_round_robin_survives_partitioned_replica():
    """Rotation keeps hitting the dark replica's turn; the suspect window
    must steer follow-up reads away and every search must stay ok."""
    from repro.check.history import kv_ops_from_spans
    from repro.core.linearizability import check_kv_linearizable

    cluster, client, tracer = _spread_cluster("round_robin")
    key, kv_mn = _key_with_offnode_kv_primary(cluster, client)

    start = cluster.env.now
    cluster.install_faults(FaultPlan(partitions=[
        Partition(a=CN, b=kv_mn, start_us=start, end_us=start + 2000.0,
                  drop_requests=True, drop_replies=True)], seed=0),
        retry=_SHORT_RETRY)
    for _ in range(6):
        assert cluster.run_op(client.search(key)).ok
    cluster.install_faults(None)
    violation = check_kv_linearizable(kv_ops_from_spans(tracer.spans))
    assert violation is None, violation


# --------------------------------------------------------------------------
# Property: random small fault plans over random op programs
# --------------------------------------------------------------------------
_DURATION = 3000.0


@st.composite
def fault_plans(draw):
    """Small scripted plans: loss bursts, at most one compute↔MN
    partition (requests always dropped, so a partitioned MN can never
    grant a block the client will abandon), at most one gray node."""
    links = []
    for _ in range(draw(st.integers(0, 2))):
        start = draw(st.floats(0.0, 0.6 * _DURATION))
        links.append(LinkFault(
            mn_id=draw(st.sampled_from([None, 0, 1, 2])),
            drop_p=draw(st.floats(0.0, 0.05)),
            dup_p=draw(st.floats(0.0, 0.02)),
            jitter_us=draw(st.floats(0.0, 2.0)),
            start_us=start,
            end_us=start + draw(st.floats(50.0, 0.4 * _DURATION))))
    partitions = []
    if draw(st.booleans()):
        start = draw(st.floats(0.0, 0.5 * _DURATION))
        partitions.append(Partition(
            a=CN, b=draw(st.integers(0, 2)),
            start_us=start,
            end_us=start + draw(st.floats(20.0, 400.0)),
            drop_requests=True,
            drop_replies=draw(st.booleans())))
    grays = []
    if draw(st.booleans()):
        start = draw(st.floats(0.0, 0.5 * _DURATION))
        grays.append(GrayNode(
            mn_id=draw(st.integers(0, 2)),
            factor=draw(st.floats(2.0, 6.0)),
            start_us=start,
            end_us=start + draw(st.floats(100.0, 0.5 * _DURATION))))
    return FaultPlan(link_faults=links, partitions=partitions,
                     gray_nodes=grays, seed=draw(st.integers(0, 2 ** 16)))


@settings(max_examples=12, deadline=None)
@given(plan=fault_plans(), program_seed=st.integers(0, 2 ** 16))
def test_random_plans_stay_sound(plan, program_seed):
    """Every op terminates (ok or typed failure), no block leaks, and the
    observed history is KV-linearizable — for arbitrary small plans."""
    report = run_campaign(seed=program_seed, plan=plan,
                          clients=2, ops_per_client=25)
    assert report.hung_ops == 0, report.render()
    assert not report.exceptions, report.render()
    assert report.balance_ok, report.render()
    assert report.linearizable, report.render()


# --------------------------------------------------------------------------
# Long random sweep — excluded from tier-1 (run with `pytest -m campaign`)
# --------------------------------------------------------------------------
@pytest.mark.campaign
@pytest.mark.parametrize("seed", range(8))
def test_long_random_campaign(seed):
    report = run_campaign("random", seed=seed, clients=3,
                          ops_per_client=150)
    assert report.sound, report.render()


# --------------------------------------------------------------------------
# Duplicated ALLOC RPCs under packet loss (idempotency-token dedup)
# --------------------------------------------------------------------------
def test_duplicated_alloc_under_loss_keeps_balance_sound():
    """A lossy, heavily-duplicating link replays ALLOC RPCs at the MNs.
    Without the idempotency-token reply cache each replayed ALLOC would
    hand out a second block the client never adopts — a leak the
    alloc-balance audit (blocks outstanding at MNs vs owned by clients)
    would catch.  Large values force block churn so ALLOC/FREE traffic
    actually rides the faulty window."""
    plan = FaultPlan(link_faults=[LinkFault(drop_p=0.05, dup_p=0.30,
                                            start_us=50.0,
                                            end_us=8_000.0)],
                     seed=2)
    report = run_campaign(seed=2, plan=plan, clients=3,
                          ops_per_client=150, value_size=768)
    assert report.sound, report.render()
    assert report.balance_ok, \
        f"alloc leak: {report.blocks_outstanding} != {report.blocks_owned}"
    # the fault window really duplicated traffic, and dedup really hit
    assert report.fabric["duplicates"] > 0
    assert report.fabric["dedup_hits"] > 0
    assert report.fabric["rpc_dedup_hits"] > 0


def test_duplicated_alloc_balance_across_seeds():
    """The dedup guarantee is not one lucky schedule: every seed in a
    small sweep stays balanced and linearizable."""
    for seed in range(4):
        plan = FaultPlan(link_faults=[LinkFault(drop_p=0.05, dup_p=0.30,
                                                start_us=50.0,
                                                end_us=8_000.0)],
                         seed=seed)
        report = run_campaign(seed=seed, plan=plan, clients=3,
                              ops_per_client=80, value_size=768)
        assert report.sound, f"seed {seed}:\n{report.render()}"
        assert report.balance_ok, f"seed {seed}: alloc leak"
        assert report.fabric["duplicates"] > 0
