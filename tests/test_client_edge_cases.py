"""Edge cases and error paths of the FUSEE client."""

import pytest

from repro.core import ClusterConfig, FuseeCluster
from repro.core.addressing import RegionConfig
from repro.core.memory import AllocationError
from repro.core.race import IndexFullError, RaceConfig
from tests.conftest import small_config, run


@pytest.fixture
def cluster():
    return FuseeCluster(small_config())


@pytest.fixture
def client(cluster):
    return cluster.new_client()


class TestSizing:
    def test_oversized_value_raises(self, cluster, client):
        huge = b"x" * (1 << 20)
        with pytest.raises(AllocationError):
            run(cluster, client.insert(b"k", huge))

    def test_largest_fitting_value_works(self, cluster, client):
        largest_class = client.allocator.size_classes[-1]
        from repro.core.wire import kv_block_size
        value = b"v" * (largest_class - kv_block_size(1, 0))
        assert run(cluster, client.insert(b"k", value)).ok
        assert run(cluster, client.search(b"k")).value == value

    def test_one_byte_key(self, cluster, client):
        assert run(cluster, client.insert(b"k", b"v")).ok
        assert run(cluster, client.search(b"k")).value == b"v"

    def test_long_key(self, cluster, client):
        key = b"K" * 200
        assert run(cluster, client.insert(key, b"v")).ok
        assert run(cluster, client.search(key)).value == b"v"


class TestIndexPressure:
    def test_index_full_without_master_raises(self):
        """Without a master to expand it, a full subtable raises."""
        config = small_config(
            race=RaceConfig(n_subtables=1, n_groups=2, slots_per_bucket=1))
        cluster = FuseeCluster(config)
        client = cluster.new_client()
        client.master = None
        with pytest.raises(IndexFullError):
            for i in range(100):
                result = run(cluster, client.insert(f"k{i}".encode(), b"v"))
                assert result.ok or result.existed

    def test_delete_frees_index_capacity(self):
        config = small_config(
            race=RaceConfig(n_subtables=1, n_groups=2, slots_per_bucket=2))
        cluster = FuseeCluster(config)
        client = cluster.new_client()
        inserted = []
        try:
            for i in range(100):
                key = f"k{i}".encode()
                if run(cluster, client.insert(key, b"v")).ok:
                    inserted.append(key)
        except IndexFullError:
            pass
        assert inserted
        victim = inserted.pop()
        assert run(cluster, client.delete(victim)).ok
        assert run(cluster, client.insert(b"fresh-after-delete", b"v")).ok


class TestFingerprintCollisions:
    def find_fp_collision(self, cluster, base=b"colA"):
        """Two keys in the same subtable with the same fingerprint."""
        race = cluster.race
        target = race.key_meta(base)
        for i in range(200_000):
            key = f"probe-{i}".encode()
            meta = race.key_meta(key)
            if (meta.subtable == target.subtable
                    and meta.fingerprint == target.fingerprint
                    and key != base):
                return base, key
        pytest.skip("no fingerprint collision found in probe budget")

    def test_colliding_fingerprints_resolved_by_full_key(self, cluster,
                                                         client):
        k1, k2 = self.find_fp_collision(cluster)
        assert run(cluster, client.insert(k1, b"value-1")).ok
        assert run(cluster, client.insert(k2, b"value-2")).ok
        assert run(cluster, client.search(k1)).value == b"value-1"
        assert run(cluster, client.search(k2)).value == b"value-2"
        assert run(cluster, client.delete(k1)).ok
        assert not run(cluster, client.search(k1)).ok
        assert run(cluster, client.search(k2)).value == b"value-2"

    def test_update_targets_right_key_under_collision(self, cluster,
                                                      client):
        k1, k2 = self.find_fp_collision(cluster, base=b"colB")
        run(cluster, client.insert(k1, b"one"))
        run(cluster, client.insert(k2, b"two"))
        assert run(cluster, client.update(k2, b"two-new")).ok
        assert run(cluster, client.search(k1)).value == b"one"
        assert run(cluster, client.search(k2)).value == b"two-new"


class TestCacheCoherenceEdges:
    def test_stale_cache_after_delete_and_reinsert(self, cluster):
        a, b = cluster.new_client(), cluster.new_client()
        run(cluster, a.insert(b"k", b"v1"))
        run(cluster, b.search(b"k"))  # warm b's cache
        run(cluster, a.delete(b"k"))
        run(cluster, a.insert(b"k", b"v2"))  # possibly a different slot
        assert run(cluster, b.search(b"k")).value == b"v2"

    def test_cache_eviction_does_not_lose_data(self, cluster):
        client = cluster.new_client(cache_capacity=4)
        keys = [f"evict-{i}".encode() for i in range(20)]
        for key in keys:
            run(cluster, client.insert(key, key))
        assert len(client.cache) <= 4
        for key in keys:
            assert run(cluster, client.search(key)).value == key

    def test_update_loop_with_tiny_cache(self, cluster):
        client = cluster.new_client(cache_capacity=1)
        run(cluster, client.insert(b"a", b"1"))
        run(cluster, client.insert(b"b", b"2"))
        for i in range(10):
            assert run(cluster, client.update(b"a", f"a{i}".encode())).ok
            assert run(cluster, client.update(b"b", f"b{i}".encode())).ok
        assert run(cluster, client.search(b"a")).value == b"a9"
        assert run(cluster, client.search(b"b")).value == b"b9"


class TestReuseAfterChurn:
    def test_object_reuse_keeps_log_walkable(self, cluster, client):
        """Recycled objects re-link into the per-class list; a recovery
        walk after heavy churn must still terminate and find the tail."""
        run(cluster, client.insert(b"churn", b"x" * 40))
        for i in range(30):
            run(cluster, client.update(b"churn", f"{i}".encode() * 10))
            if i % 10 == 9:
                run(cluster, client.maintenance())
        from repro.core.oplog import LogWalker
        from repro.core.wire import kv_block_size
        class_idx = client.allocator.class_for(kv_block_size(5, 40))
        walker = LogWalker(cluster.fabric, cluster.region_map,
                           client.allocator.size_classes)

        def proc():
            return (yield from walker.walk_class(
                client.allocator.head(class_idx), class_idx))

        visited, _terminator = run(cluster, proc())
        assert visited  # non-empty and terminated
        assert visited[-1].is_tail


class TestPrimaryBucketRead:
    """The deduplicated primary combined-bucket read: one
    ``bucket_read_ops(meta, replica=0)`` build per attempt, and a
    piggy-backed KV-write timeout aborts the caller (the op must not go
    on to install a pointer at possibly-unwritten memory)."""

    def test_bucket_read_ops_built_once_per_bucket_read(self, cluster,
                                                        monkeypatch):
        client = cluster.new_client(cache_enabled=False)
        assert run(cluster, client.insert(b"k", b"v")).ok
        calls = []
        real = client.race.bucket_read_ops
        monkeypatch.setattr(
            client.race, "bucket_read_ops",
            lambda meta, replica=0: (calls.append(replica)
                                     or real(meta, replica=replica)))
        assert run(cluster, client.search(b"k")).ok
        assert calls == [0]

    def test_piggybacked_write_timeout_aborts_the_read(self, cluster,
                                                       client):
        from repro.rdma import Completion, TIMEOUT, WriteOp

        assert run(cluster, client.insert(b"k", b"v")).ok
        meta = client.race.key_meta(b"k")
        extra = WriteOp(0, 0, b"x" * 8)
        gen = client._read_buckets(meta, extra_ops=[extra])
        next(gen)  # posts the combined bucket read + piggy-backed write
        n_reads = len(client.race.bucket_read_ops(meta, replica=0))
        comps = [Completion(op, b"")  # bucket payloads are never parsed
                 for op in client.race.bucket_read_ops(meta, replica=0)]
        comps.append(Completion(extra, TIMEOUT))
        with pytest.raises(StopIteration) as stop:
            gen.send(comps)
        assert stop.value.value is None
        assert len(comps) == n_reads + 1

    def test_bucket_read_timeout_is_not_an_abort(self, cluster, client):
        """A timed-out *bucket* read retries (view None, not aborted);
        only a piggy-backed write timeout may abort."""
        from repro.rdma import Completion, TIMEOUT, WriteOp

        assert run(cluster, client.insert(b"k", b"v")).ok
        meta = client.race.key_meta(b"k")
        extra = WriteOp(0, 0, b"x" * 8)
        gen = client._primary_bucket_read(meta, [extra])
        next(gen)
        comps = [Completion(op, TIMEOUT)
                 for op in client.race.bucket_read_ops(meta, replica=0)]
        comps.append(Completion(extra, None))  # the write landed
        with pytest.raises(StopIteration) as stop:
            gen.send(comps)
        assert stop.value.value == (None, False)
