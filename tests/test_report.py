"""Tests for the result-rendering helpers."""

import pytest

from repro.harness.experiments import ExperimentResult
from repro.harness.report import (
    ascii_bars,
    render,
    timeline_chart,
    to_csv,
    to_markdown,
)


@pytest.fixture
def result():
    return ExperimentResult(
        "figX", "A demo table", ["col_a", "col_b", "mops"],
        [[1, "x", 1.5], [2, None, 3.0]], notes="a note")


class TestCsv:
    def test_header_and_rows(self, result):
        lines = to_csv(result).strip().splitlines()
        assert lines[0] == "col_a,col_b,mops"
        assert lines[1] == "1,x,1.500"
        assert lines[2] == "2,,3.000"


class TestMarkdown:
    def test_structure(self, result):
        md = to_markdown(result)
        assert md.startswith("### figX: A demo table")
        assert "| col_a | col_b | mops |" in md
        assert "| 1 | x | 1.500 |" in md
        assert "*a note*" in md

    def test_none_rendered_empty(self, result):
        assert "|  | 3.000 |" in to_markdown(result)


class TestAsciiBars:
    def test_scaling(self):
        chart = ascii_bars([1.0, 2.0, 4.0], width=8)
        lines = chart.splitlines()
        assert lines[0].count("#") == 2
        assert lines[1].count("#") == 4
        assert lines[2].count("#") == 8

    def test_labels(self):
        chart = ascii_bars([1.0], labels=["t=0"], unit=" Mops")
        assert "t=0" in chart and "Mops" in chart

    def test_empty(self):
        assert ascii_bars([]) == "(no data)"

    def test_all_zero_does_not_crash(self):
        assert "#" not in ascii_bars([0.0, 0.0])


class TestTimelineChart:
    def test_renders_buckets(self):
        result = ExperimentResult(
            "fig20", "Crash timeline", ["bucket", "t_us", "mops"],
            [[0, 0.0, 2.0], [1, 500.0, 1.0]])
        chart = timeline_chart(result, width=10)
        assert "t=0us" in chart and "t=500us" in chart

    def test_rejects_non_timeline(self, result):
        bad = ExperimentResult("x", "t", ["a"], [[1]])
        with pytest.raises(ValueError):
            timeline_chart(bad)


class TestRender:
    def test_dispatch(self, result):
        assert render(result, "table").startswith("== figX")
        assert render(result, "csv").startswith("col_a")
        assert render(result, "md").startswith("### figX")
        with pytest.raises(ValueError):
            render(result, "xml")
