"""Production traffic scenarios: generators, verdicts, elasticity.

Four layers:

* **Generator properties** (Hypothesis): seeded determinism — the same
  ``(scenario, seed)`` always yields a byte-identical op stream;
  rate-schedule conservation — arrival counts match the schedule's
  analytic integral within Poisson tolerance, and every analytic
  integral matches numeric quadrature; tenant key-space disjointness;
  monotonic hot-set rotation under popularity shifts.
* **Verdicts**: every shipped scenario family runs as a fault campaign
  (`run_campaign(scenario=...)`) and must come out *sound* — no hangs,
  no leaks, allocator balance, and a passing whole-run linearizability
  check.  The compound family additionally runs monitored and its
  seeded gray fault must be caught by the detector.
* **Isolation**: the paced open-loop runner feeds per-tenant metrics;
  `tenant_report` shares must track the configured tenant weights.
* **Elasticity under saturation**: `fig21_elasticity(saturate=True)`
  grows the MN pool mid-scenario and the profiler must attribute the
  rebalance — snapshot read-only window vs. data copy.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.campaign import run_campaign, scenario_fault_plan
from repro.harness.experiments import Scale, fig21_elasticity
from repro.workloads import (
    ConstantRate,
    DiurnalRate,
    FaultEvent,
    FlashCrowdRate,
    HotKeyStorm,
    RampRate,
    SCENARIOS,
    SMOKE_TRIM,
    WorkingSetDrift,
    get_scenario,
    tenant_report,
)

SCENARIO_NAMES = sorted(SCENARIOS)

# A fast trim for generator-property examples (distinct from the CI
# smoke trim: shorter still, since properties run many examples).
PROP_TRIM = {"duration_us": 1_500.0, "keys_per_tenant": 64,
             "n_clients": 2}


# ---------------------------------------------------------------------------
# Seeded determinism: replayable verdicts need byte-identical streams
# ---------------------------------------------------------------------------
class TestDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(name=st.sampled_from(SCENARIO_NAMES),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_same_seed_yields_byte_identical_stream(self, name, seed):
        a = get_scenario(name, seed=seed, **PROP_TRIM)
        b = get_scenario(name, seed=seed, **PROP_TRIM)
        stream_a = b"\n".join(op.encode() for op in a.ops())
        stream_b = b"\n".join(op.encode() for op in b.ops())
        assert stream_a == stream_b

    @settings(max_examples=10, deadline=None)
    @given(name=st.sampled_from(SCENARIO_NAMES),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_different_clients_see_different_streams(self, name, seed):
        scn = get_scenario(name, seed=seed, **PROP_TRIM)
        ops_0 = [op.encode() for op in scn.client_stream(0)]
        ops_1 = [op.encode() for op in scn.client_stream(1)]
        if ops_0 and ops_1:
            assert ops_0 != ops_1

    def test_seed_changes_the_stream(self):
        a = get_scenario("hot-key-storm", seed=0, **PROP_TRIM)
        b = get_scenario("hot-key-storm", seed=1, **PROP_TRIM)
        assert ([op.encode() for op in a.ops()]
                != [op.encode() for op in b.ops()])


# ---------------------------------------------------------------------------
# Rate schedules: analytic integrals and arrival conservation
# ---------------------------------------------------------------------------
def _numeric_integral(schedule, t0, t1, steps=4000):
    dt = (t1 - t0) / steps
    total = 0.0
    for i in range(steps):
        a = t0 + i * dt
        total += 0.5 * (schedule.rate(a) + schedule.rate(a + dt)) * dt
    return total


class TestRateSchedules:
    SCHEDULES = [
        ConstantRate(0.25),
        DiurnalRate(trough=0.05, peak=0.4, period_us=5_000.0),
        DiurnalRate(trough=0.1, peak=0.3, period_us=3_000.0,
                    phase=1_000.0),
        FlashCrowdRate(base=0.1, surge=0.5, at_us=2_000.0,
                       duration_us=1_500.0),
        RampRate(lo=0.05, hi=0.45, t0_us=1_000.0, t1_us=6_000.0),
        ConstantRate(0.1) + RampRate(lo=0.0, hi=0.2, t0_us=0.0,
                                     t1_us=8_000.0),
    ]

    @pytest.mark.parametrize("schedule", SCHEDULES,
                             ids=lambda s: type(s).__name__)
    @pytest.mark.parametrize("window", [(0.0, 8_000.0),
                                        (1_500.0, 4_321.0)])
    def test_analytic_integral_matches_quadrature(self, schedule, window):
        t0, t1 = window
        analytic = schedule.integral(t0, t1)
        numeric = _numeric_integral(schedule, t0, t1)
        assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    @pytest.mark.parametrize("schedule", SCHEDULES,
                             ids=lambda s: type(s).__name__)
    def test_rate_never_exceeds_peak(self, schedule):
        peak = schedule.peak_rate()
        for i in range(200):
            assert schedule.rate(i * 40.0) <= peak + 1e-12

    @settings(max_examples=25, deadline=None)
    @given(name=st.sampled_from(SCENARIO_NAMES),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_arrivals_conserve_the_schedule_integral(self, name, seed):
        # Thinned Poisson arrivals: the op count is Poisson(E) with
        # E = integral(0, duration).  A 6-sigma band plus slack keeps
        # this deterministic-per-seed check far from flaking while
        # still catching any systematic rate error.
        scn = get_scenario(name, seed=seed, duration_us=4_000.0,
                           keys_per_tenant=64, n_clients=3)
        expected = scn.schedule.integral(0.0, scn.duration_us)
        got = len(scn.ops())
        assert abs(got - expected) <= 6.0 * math.sqrt(expected) + 12.0

    def test_ops_are_time_sorted_and_in_range(self):
        scn = get_scenario("diurnal", seed=3, **PROP_TRIM)
        ops = scn.ops()
        times = [op.at_us for op in ops]
        assert times == sorted(times)
        assert all(0.0 <= t < scn.duration_us for t in times)


# ---------------------------------------------------------------------------
# Multi-tenant key spaces stay disjoint
# ---------------------------------------------------------------------------
class TestTenantIsolation:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_key_spaces_are_disjoint(self, seed):
        scn = get_scenario("multi-tenant", seed=seed, **PROP_TRIM)
        seen = {}
        for key, _value in scn.preload_items():
            assert key not in seen
            seen[key] = True
        # Every preloaded or generated key carries exactly one tenant's
        # prefix; prefixes never collide because tenant names are
        # unique and colon-terminated.
        prefixes = [t.name.encode() + b":" for t in scn.tenants]
        for op in scn.ops():
            owners = [p for p in prefixes if op.key.startswith(p)]
            assert len(owners) == 1

    def test_tenant_weights_steer_traffic_shares(self):
        scn = get_scenario("multi-tenant", seed=0, duration_us=8_000.0,
                           keys_per_tenant=128, n_clients=4)
        counts = {t.name: 0 for t in scn.tenants}
        for op in scn.ops():
            counts[op.tenant] += 1
        # weights 3 / 2 / 1 -> strict ordering with this much traffic
        assert counts["readmost"] > counts["writer"] > counts["churn"]


# ---------------------------------------------------------------------------
# Popularity shifts rotate the hot set monotonically
# ---------------------------------------------------------------------------
class TestPopularityShift:
    @settings(max_examples=30, deadline=None)
    @given(period=st.floats(min_value=100.0, max_value=10_000.0),
           stride=st.integers(min_value=1, max_value=16),
           t=st.floats(min_value=0.0, max_value=50_000.0),
           dt=st.floats(min_value=0.0, max_value=50_000.0))
    def test_storm_offset_is_monotone(self, period, stride, t, dt):
        storm = HotKeyStorm(period_us=period, stride=stride)
        assert storm.offset(t + dt) >= storm.offset(t)

    def test_storm_rotates_once_per_period(self):
        storm = HotKeyStorm(period_us=1_000.0, stride=3)
        offsets = [storm.offset(t * 1_000.0) for t in range(8)]
        assert offsets == [i * 3 for i in range(8)]
        assert [storm.epoch(t * 1_000.0) for t in range(8)] \
            == list(range(8))

    @settings(max_examples=30, deadline=None)
    @given(rate=st.floats(min_value=0.001, max_value=1.0),
           t=st.floats(min_value=0.0, max_value=50_000.0),
           dt=st.floats(min_value=0.0, max_value=50_000.0))
    def test_drift_offset_is_monotone(self, rate, t, dt):
        drift = WorkingSetDrift(keys_per_us=rate)
        assert drift.offset(t + dt) >= drift.offset(t)

    def test_storm_scenario_hot_key_changes_across_epochs(self):
        scn = get_scenario("hot-key-storm", seed=0, **PROP_TRIM)
        tenant = scn.tenants[0]
        period = scn.shift.period_us
        hot = [scn.hot_index(tenant, epoch * period)
               for epoch in range(4)]
        assert len(set(hot)) > 1  # the head actually moves


# ---------------------------------------------------------------------------
# Verdicts: every shipped family is sound under its fault campaign
# ---------------------------------------------------------------------------
class TestScenarioVerdicts:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_family_is_sound_and_linearizable(self, name):
        report = run_campaign(scenario=name, seed=0,
                              scenario_overrides=SMOKE_TRIM)
        assert report.name == f"scenario:{name}"
        assert report.sound, report.render()
        assert report.linearizable
        assert report.balance_ok
        assert report.hung_ops == 0 and not report.exceptions

    def test_compound_scenario_supplies_its_own_fault_plan(self):
        scn = get_scenario("flash-crowd-gray", seed=0, **SMOKE_TRIM)
        plan = scenario_fault_plan(scn, seed=0)
        assert plan.gray_nodes and plan.link_faults
        gray = plan.gray_nodes[0]
        assert gray.start_us == pytest.approx(0.25 * scn.duration_us)
        assert gray.end_us == pytest.approx(0.75 * scn.duration_us)

    def test_fault_event_fracs_are_validated(self):
        with pytest.raises(ValueError):
            FaultEvent("gray", 0.8, 0.2)
        with pytest.raises(ValueError):
            FaultEvent("meteor", 0.1, 0.9)

    def test_monitored_compound_scenario_catches_its_gray_fault(self):
        from repro.obs import MonitorConfig
        # Full-size timing: the smoke trim compresses the gray onset
        # below the detector's catch deadline (3 windows of 250us).
        report = run_campaign(scenario="flash-crowd-gray", seed=0,
                              monitor_config=MonitorConfig())
        assert report.sound, report.render()
        det = report.detector
        assert det is not None and det["ok"], det
        assert det["expected"] >= 1 and not det["missed"]


# ---------------------------------------------------------------------------
# Per-tenant isolation metrics through the paced open-loop runner
# ---------------------------------------------------------------------------
class TestTenantReport:
    def test_shares_track_weights_on_a_live_bed(self):
        from repro.harness.runner import run_open_loop
        from repro.harness.systems import fusee_bed
        from repro.obs import Metrics

        scn = get_scenario("multi-tenant", seed=0, duration_us=4_000.0,
                           keys_per_tenant=96, n_clients=3)
        bed = fusee_bed(dataset_bytes=1 << 21)
        assert bed.load(scn.preload_items()) > 0
        metrics = Metrics()
        clients = [bed.new_client() for _ in range(scn.n_clients)]
        result = run_open_loop(bed.env, clients, scn.client_stream,
                               bed.execute, duration_us=scn.duration_us,
                               metrics=metrics)
        assert result.ops > 0 and result.errors == 0
        report = tenant_report(metrics, scn)
        assert set(report) == {"readmost", "writer", "churn"}
        shares = {name: row["throughput_share"]
                  for name, row in report.items()}
        assert shares["readmost"] > shares["writer"] > shares["churn"]
        assert sum(shares.values()) == pytest.approx(1.0)
        for row in report.values():
            assert row["ops"] > 0
            assert row["p99_us"] >= row["p50_us"] > 0.0


# ---------------------------------------------------------------------------
# Elasticity under saturation: rebalance time attributed by the profiler
# ---------------------------------------------------------------------------
class TestElasticityUnderSaturation:
    def test_fig21_saturating_attributes_rebalance_phases(self):
        result = fig21_elasticity(scale=Scale.tiny(), saturate=True,
                                  scenario="hot-key-storm", seed=0)
        reb = result.extras["rebalance"]
        assert reb["new_mn_id"] is not None
        assert reb["snapshot_window_us"] > 0.0
        assert reb["copy_us"] > 0.0
        assert reb["total_us"] >= reb["snapshot_window_us"] + reb["copy_us"]
        assert 0.0 < reb["window_share"] < 1.0
        assert 0.0 < reb["copy_share"] < 1.0
        assert "rebalance" in result.notes
        # the run itself kept serving under saturation
        assert any(row for row in result.rows)

    def test_closed_loop_scenario_stream_wraps_forever(self):
        scn = get_scenario("flash-crowd", seed=0, **PROP_TRIM)
        sat = scn.saturating_workload(0)
        ops = [sat.next_op() for _ in range(500)]
        assert len(ops) == 500
        kinds = {op for op, _key, _value in ops}
        assert "search" in kinds
