"""The schedule-exploration subsystem: replay, explore, minimize, mutate.

Four contracts (ISSUE acceptance criteria):

1. **Replay determinism** — the same decision sequence reproduces an
   identical execution (same trace, same footprints, same history),
   whether or not sleep-set state was active when it was recorded.
2. **Exploration** — the explorer enumerates genuinely different
   interleavings; sleep sets cut the schedule count without losing
   violations; clean protocols exhaust completely at the documented
   bounds.
3. **Minimization** — a failing schedule delta-debugs to a shorter
   sequence that still fails, and the rendered reproducer replays it.
4. **Mutations** — every known-bad protocol mutation is caught within
   its documented schedule budget, while the unmutated protocol passes
   the *same* exploration clean.
"""

import pytest

from repro.check import (
    MUTATION_SPECS,
    MUTATIONS,
    SCENARIOS,
    ControlledScheduler,
    Footprint,
    ScheduleExplorer,
    format_repro,
    minimize_schedule,
)
from repro.rdma import Fabric, FabricConfig, MemoryNode, ReadOp, WriteOp
from repro.sim import Environment, NicProfile

ZERO_FABRIC = FabricConfig(one_way_delay_us=0.0, fail_delay_us=0.0,
                           post_overhead_us=0.0)
ZERO_NIC = NicProfile(op_overhead=0.0, atomic_overhead=0.0,
                      bandwidth_gbps=float("inf"), rpc_overhead=0.0)


def _two_writer_world(sched, same_word: bool):
    """Two processes writing (same or different) words, one reader."""
    env = Environment()
    env.set_scheduler(sched)
    fabric = Fabric(env, ZERO_FABRIC)
    fabric.add_node(MemoryNode(env, 0, 256, nic_profile=ZERO_NIC))
    log = []

    def writer(i):
        addr = 0 if same_word else i * 8
        yield fabric.post([WriteOp(0, addr, (42 + i).to_bytes(8, "big"))])
        log.append(("w", i))

    def reader():
        comps = yield fabric.post([ReadOp(0, 0, 8)])
        log.append(("r", int.from_bytes(comps[0].value, "big")))

    env.process(writer(0), name="w0")
    env.process(writer(1), name="w1")
    env.process(reader(), name="r")
    env.run()
    return log


# --------------------------------------------------------------------------
# Footprints and branch bookkeeping
# --------------------------------------------------------------------------

class TestFootprint:
    def test_conflict_requires_a_writer(self):
        r = Footprint(reads=frozenset({("m", 0, 0)}))
        w = Footprint(writes=frozenset({("m", 0, 0)}))
        other = Footprint(writes=frozenset({("m", 0, 1)}))
        assert w.conflicts(r) and r.conflicts(w) and w.conflicts(w)
        assert not r.conflicts(r)
        assert not w.conflicts(other)

    def test_scheduler_records_word_footprints(self):
        sched = ControlledScheduler()
        _two_writer_world(sched, same_word=True)
        writes = set()
        for fp in sched.timeline:
            writes |= fp.writes
        assert ("m", 0, 0) in writes
        assert sched.branch_counts, "co-runnable events must branch"


# --------------------------------------------------------------------------
# Replay determinism
# --------------------------------------------------------------------------

class TestReplay:
    def test_same_decisions_same_execution(self):
        import random
        recorded = ControlledScheduler(rng=random.Random(7))
        log1 = _two_writer_world(recorded, same_word=True)
        replayed = ControlledScheduler(decisions=recorded.trace)
        log2 = _two_writer_world(replayed, same_word=True)
        assert log1 == log2
        assert recorded.trace == replayed.trace
        assert recorded.branch_counts == replayed.branch_counts
        assert recorded.timeline == replayed.timeline

    def test_default_run_is_all_zero_decisions(self):
        base = ControlledScheduler()
        log1 = _two_writer_world(base, same_word=True)
        zeros = ControlledScheduler(decisions=[0] * 32)
        log2 = _two_writer_world(zeros, same_word=True)
        assert log1 == log2

    @pytest.mark.parametrize("name", sorted(MUTATION_SPECS))
    def test_violating_schedule_replays_deterministically(self, name):
        """A violation found under sleep-set exploration must reproduce
        on a *plain* scheduler from its decision sequence alone."""
        spec = MUTATION_SPECS[name]
        factory = SCENARIOS[spec.scenario]
        with MUTATIONS[name]():
            result = ScheduleExplorer(
                factory(), max_schedules=spec.max_schedules,
                max_decisions=spec.max_decisions).explore()
            assert result.found
            v1 = factory()(ControlledScheduler(
                decisions=result.violating_decisions))
            v2 = factory()(ControlledScheduler(
                decisions=result.violating_decisions))
        assert v1 == result.violation
        assert v1 == v2


# --------------------------------------------------------------------------
# Exploration + sleep sets
# --------------------------------------------------------------------------

class TestExplore:
    def test_explores_multiple_interleavings(self):
        orders = set()

        def scenario(sched):
            log = _two_writer_world(sched, same_word=True)
            orders.add(tuple(log))
            return None

        result = ScheduleExplorer(scenario, max_schedules=200).explore()
        assert result.complete
        assert not result.found
        assert len(orders) >= 3   # both write orders, both read positions

    def test_sleep_sets_reduce_without_losing_outcomes(self):
        """Sleep sets must preserve every *observable* outcome (read value
        and final memory state) while running far fewer schedules.  Raw
        completion-log orders are not compared: schedules differing only
        in untracked Python-side bookkeeping are genuinely equivalent and
        are exactly what the reduction removes."""
        def run(dpor):
            outcomes = set()

            def scenario(sched):
                log = _two_writer_world(sched, same_word=True)
                read = next(v for k, v in log if k == "r")
                outcomes.add(read)
                return None

            result = ScheduleExplorer(scenario, max_schedules=2000,
                                      dpor=dpor).explore()
            assert result.complete
            return outcomes, result.schedules

        full, n_full = run(dpor=False)
        reduced, n_reduced = run(dpor=True)
        assert reduced == full == {0, 42, 43}
        assert n_reduced < n_full     # fewer schedules for the same coverage

    def test_finds_planted_race(self):
        def scenario(sched):
            log = _two_writer_world(sched, same_word=True)
            final = [v for k, v in log if k == "r"]
            if final and final[0] == 43:   # writer 1 overwrote writer 0
                return "writer-1-last"
            return None

        result = ScheduleExplorer(scenario, max_schedules=200).explore()
        assert result.found
        assert result.violation == "writer-1-last"


# --------------------------------------------------------------------------
# Minimizer
# --------------------------------------------------------------------------

class TestMinimize:
    def test_minimized_schedule_still_fails_and_renders(self):
        spec = MUTATION_SPECS["reorder-replica-writes"]
        factory = SCENARIOS[spec.scenario]
        with MUTATIONS["reorder-replica-writes"]():
            result = ScheduleExplorer(
                factory(), max_schedules=spec.max_schedules,
                max_decisions=spec.max_decisions).explore()
            assert result.found
            minimized = minimize_schedule(factory(),
                                          result.violating_decisions)
            assert minimized is not None
            assert len(minimized.decisions) <= len(result.violating_decisions)
            # the minimal sequence still fails...
            again = factory()(ControlledScheduler(
                decisions=minimized.decisions))
            assert again is not None
        # ...and passes without the mutation (the schedule exposes the
        # mutation, not a bug in the protocol itself)
        clean = factory()(ControlledScheduler(decisions=minimized.decisions))
        assert clean is None
        snippet = format_repro(spec.scenario, minimized,
                               mutation="reorder-replica-writes")
        assert str(minimized.decisions) in snippet
        assert "MUTATIONS['reorder-replica-writes']" in snippet

    def test_non_failing_sequence_returns_none(self):
        factory = SCENARIOS["slot-write-race"]
        assert minimize_schedule(factory(), [0, 0, 0, 0]) is None


# --------------------------------------------------------------------------
# Mutations: detection within budget, clean pass at the same bounds
# --------------------------------------------------------------------------

class TestMutations:
    @pytest.mark.parametrize("name", sorted(MUTATION_SPECS))
    def test_mutation_detected_within_budget(self, name):
        spec = MUTATION_SPECS[name]
        factory = SCENARIOS[spec.scenario]
        with MUTATIONS[name]():
            result = ScheduleExplorer(
                factory(), max_schedules=spec.max_schedules,
                max_decisions=spec.max_decisions).explore()
        assert result.found, (
            f"{name}: no violating schedule within {spec.max_schedules} "
            f"schedules x {spec.max_decisions} decisions "
            f"({result.summary()})")

    @pytest.mark.parametrize("name", sorted(MUTATION_SPECS))
    def test_unmutated_protocol_survives_same_bounds(self, name):
        spec = MUTATION_SPECS[name]
        factory = SCENARIOS[spec.scenario]
        result = ScheduleExplorer(
            factory(), max_schedules=spec.max_schedules,
            max_decisions=spec.max_decisions).explore()
        assert not result.found, (
            f"clean {spec.scenario}: {result.violation}\n"
            f"decisions={result.violating_decisions}")
        assert result.complete, (
            f"clean {spec.scenario} did not exhaust within the documented "
            f"budget ({result.summary()})")


# --------------------------------------------------------------------------
# Compound stress: gray-slow memory node during an index expansion
# --------------------------------------------------------------------------

class TestGrayExpansionScenario:
    """A gray-slow primary MN while the master splits a subtable under
    client traffic.  The zero-latency check world renders gray slowness
    as *scheduler freedom* (a gray factor multiplies a zero service
    time, so the explorer's interleavings subsume every stretch
    factor); the injected fault still exercises the injector wiring on
    a controlled-scheduler bed.  Unlike the two-client protocol
    scenarios, the split generator racing two clients is too deep to
    exhaust, so the contract is budgeted survival: no violation within
    the documented schedule budget."""

    BUDGET_SCHEDULES = 150
    BUDGET_DECISIONS = 500

    def test_registered_in_the_catalog(self):
        assert "cluster-gray-expansion" in SCENARIOS

    def test_clean_protocol_survives_exploration_budget(self):
        result = ScheduleExplorer(
            SCENARIOS["cluster-gray-expansion"](),
            max_schedules=self.BUDGET_SCHEDULES,
            max_decisions=self.BUDGET_DECISIONS).explore()
        assert not result.found, (
            f"gray expansion: {result.violation}\n"
            f"decisions={result.violating_decisions}")
        # The space is not exhaustible at any practical budget; make
        # sure the budget was actually spent exploring, not cut short
        # by a scenario-setup error.
        assert result.schedules == self.BUDGET_SCHEDULES
