"""Profiler correctness: additive breakdowns, attribution, critical path.

The profiler's core contract is that every finished span's breakdown is a
*partition* of its ``[start_us, end_us]`` window: category totals sum to
the span duration exactly (to float precision), whatever the instrumented
layers emitted.  That property is checked twice — as a Hypothesis
property over arbitrary interval soups, and end-to-end on real FUSEE
runs, including lossy-fabric runs where retry backoff must show up in the
breakdown (the PR 3 sleeps used to be invisible).
"""

import json
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faults.model import FaultPlan, LinkFault
from repro.faults.retry import RetryPolicy, backoff_wait
from repro.harness.runner import run_closed_loop
from repro.harness.systems import fusee_bed
from repro.obs import (
    CATEGORIES,
    RESIDUAL,
    Profiler,
    RunProfile,
    Tracer,
    analyze_critical_path,
    critical_report,
    folded_stacks,
    profile_report,
    span_breakdown,
)
from repro.sim.core import Environment
from repro.workloads import YcsbConfig, YcsbWorkload

# ------------------------------------------------------------------ helpers


def profiled_ycsb_run(seed=7, duration_us=600.0, n_clients=4, plan=None,
                      retry=None):
    """A small profiled FUSEE YCSB-A run (bulk load unprofiled)."""
    bed = fusee_bed(n_memory_nodes=2, replication_factor=2,
                    dataset_bytes=1 << 18, background_interval_us=0.0)
    config = YcsbConfig(workload="A", n_keys=200)
    seeder = YcsbWorkload(config, seed=seed)
    bed.load((key, seeder.load_value(i))
             for i, key in enumerate(seeder.load_keys()))
    tracer = Tracer()
    bed.cluster.attach_tracer(tracer)
    profiler = Profiler(tracer=tracer).install(bed.env)
    if plan is not None:
        bed.cluster.install_faults(plan, retry=retry)
    clients = [bed.new_client() for _ in range(n_clients)]
    run_closed_loop(bed.env, clients,
                    lambda index: YcsbWorkload(config, seed=seed + 1 + index),
                    bed.execute, duration_us=duration_us,
                    fast=False)
    return tracer, profiler


def ended(tracer):
    return [s for s in tracer.spans if s.end_us is not None]


# ------------------------------------------- span_breakdown as a partition

_times = st.floats(min_value=0.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def _interval(draw):
    a = draw(_times)
    b = draw(_times)
    return (draw(st.sampled_from(CATEGORIES)),
            draw(st.sampled_from(["a", "b", "c"])),
            min(a, b), max(a, b))


class TestSpanBreakdownProperty:
    @given(st.lists(_interval(), max_size=20), _times, _times)
    def test_partition_is_additive_and_nonnegative(self, intervals, x, y):
        t0, t1 = min(x, y), max(x, y)
        parts = span_breakdown(intervals, t0, t1)
        assert all(us >= 0.0 for us in parts.values())
        assert all(cat in CATEGORIES or (cat, label) == RESIDUAL
                   for cat, label in parts)
        if t1 > t0:
            assert math.isclose(sum(parts.values()), t1 - t0,
                                rel_tol=1e-9, abs_tol=1e-9)
        else:
            assert parts == {}

    @given(st.lists(_interval(), max_size=20), _times, _times)
    def test_full_cover_by_top_priority_leaves_no_residual(self, intervals,
                                                          x, y):
        t0, t1 = min(x, y), max(x, y)
        covered = intervals + [("cpu_service", "cover", t0 - 1.0, t1 + 1.0)]
        parts = span_breakdown(covered, t0, t1)
        assert RESIDUAL not in parts
        if t1 > t0:
            # cpu_service is the highest priority: every segment lands in
            # it (another cpu_service interval may tie and take a segment,
            # so assert the category, not the single covering label).
            assert all(cat == "cpu_service" for cat, _label in parts)


class TestSpanBreakdownUnits:
    def test_no_intervals_is_all_residual(self):
        assert span_breakdown([], 2.0, 5.0) == {RESIDUAL: 3.0}

    def test_priority_resolves_overlap(self):
        # propagation covers the window; a cpu_service burst overlaps the
        # middle and must win its segment.
        parts = span_breakdown([("propagation", "net", 0.0, 10.0),
                                ("cpu_service", "mn0.cpu", 4.0, 6.0)],
                               0.0, 10.0)
        assert parts[("cpu_service", "mn0.cpu")] == pytest.approx(2.0)
        assert parts[("propagation", "net")] == pytest.approx(8.0)

    def test_intervals_clip_to_window(self):
        parts = span_breakdown([("backoff", "retry", -5.0, 3.0)], 0.0, 4.0)
        assert parts[("backoff", "retry")] == pytest.approx(3.0)
        assert parts[RESIDUAL] == pytest.approx(1.0)


# ----------------------------------------------- end-to-end on a real run


class TestRealRunAdditivity:
    def test_every_span_breakdown_sums_to_duration(self):
        tracer, profiler = profiled_ycsb_run()
        spans = ended(tracer)
        assert len(spans) > 50
        for span in spans:
            parts = profiler.breakdown(span)
            assert math.isclose(sum(parts.values()), span.duration_us,
                                rel_tol=1e-9, abs_tol=1e-9), span.op

    def test_fabric_time_is_attributed_not_residual(self):
        tracer, profiler = profiled_ycsb_run()
        profile = RunProfile.collect(profiler, tracer.spans)
        # The client residual must be a minority: the fabric layers emit
        # real intervals for the bulk of every op's latency.
        assert profile.share("client", label="compute") < 0.5
        assert profile.share("propagation") > 0.0
        assert profile.share("nic_service") > 0.0

    def test_breakdown_refuses_unfinished_span(self, ):
        tracer, profiler = profiled_ycsb_run()
        unfinished = [s for s in tracer.spans if s.end_us is None]
        if not unfinished:
            pytest.skip("run ended with no span in flight")
        with pytest.raises(ValueError):
            profiler.breakdown(unfinished[0])


class TestBackoffAttribution:
    """Satellite regression: retry sleeps must be visible in breakdowns."""

    def test_transport_retries_show_backoff_time(self):
        plan = FaultPlan(link_faults=(LinkFault(drop_p=0.30),), seed=3)
        tracer, profiler = profiled_ycsb_run(
            duration_us=800.0, plan=plan,
            retry=RetryPolicy(verb_timeout_us=6.0, backoff_base_us=2.0))
        retried = [s for s in ended(tracer) if s.transport_retries > 0]
        assert retried, "lossy plan produced no transport retries"
        for span in retried:
            parts = profiler.breakdown(span)
            backoff_us = sum(us for (cat, _label), us in parts.items()
                             if cat == "backoff")
            assert backoff_us > 0.0, (
                f"span {span.op} retried {span.transport_retries}x "
                f"but shows no backoff time: {parts}")

    def test_clean_run_has_no_backoff(self):
        tracer, profiler = profiled_ycsb_run()
        profile = RunProfile.collect(profiler, tracer.spans)
        assert profile.share("backoff") == 0.0


class TestAttributedTimeout:
    def test_records_interval_when_profiling(self):
        env = Environment()
        profiler = Profiler().install(env)

        def proc():
            yield env.attributed_timeout(5.0, "backoff", "test.sleep")

        env.process(proc())
        env.run(until=10.0)
        assert (None, "backoff", "test.sleep", 0.0, 5.0) in profiler.intervals

    def test_noop_without_profiler(self):
        env = Environment()
        done = []

        def proc():
            yield env.attributed_timeout(5.0, "backoff", "test.sleep")
            done.append(env.now)

        env.process(proc())
        env.run(until=10.0)
        assert done == [5.0]

    def test_backoff_wait_delegates(self):
        env = Environment()
        profiler = Profiler().install(env)

        def proc():
            yield backoff_wait(env, 3.0, label="verb.timeout")

        env.process(proc())
        env.run(until=10.0)
        assert (None, "backoff", "verb.timeout", 0.0, 3.0) \
            in profiler.intervals

    def test_zero_delay_records_nothing(self):
        env = Environment()
        profiler = Profiler().install(env)

        def proc():
            yield env.attributed_timeout(0.0, "backoff", "noop")

        env.process(proc())
        env.run(until=1.0)
        assert profiler.intervals == []


# --------------------------------------------------- aggregation & exports


class TestRunProfile:
    def test_overall_counts_and_totals(self):
        tracer, profiler = profiled_ycsb_run()
        profile = RunProfile.collect(profiler, tracer.spans)
        spans = ended(tracer)
        assert profile.overall["count"] == len(spans)
        assert profile.unfinished_spans == len(tracer.spans) - len(spans)
        assert profile.overall["total_us"] == pytest.approx(
            sum(s.duration_us for s in spans))
        # aggregate additivity: the overall breakdown is also a partition
        assert sum(profile.overall["breakdown"].values()) == pytest.approx(
            profile.overall["total_us"])
        assert sum(profile.ops[op]["count"] for op in profile.ops) \
            == len(spans)

    def test_shares_are_fractions(self):
        tracer, profiler = profiled_ycsb_run()
        profile = RunProfile.collect(profiler, tracer.spans)
        total = sum(profile.share(cat) for cat in CATEGORIES)
        assert total == pytest.approx(1.0)
        assert 0.0 <= profile.tail_share("propagation") <= 1.0

    def test_to_dict_is_json_clean(self):
        tracer, profiler = profiled_ycsb_run()
        profile = RunProfile.collect(profiler, tracer.spans)
        payload = json.loads(json.dumps(profile.to_dict(), sort_keys=True))
        assert payload["overall"]["count"] == profile.overall["count"]
        assert "resources" in payload and "tail" in payload

    def test_report_renders(self):
        tracer, profiler = profiled_ycsb_run()
        profile = RunProfile.collect(profiler, tracer.spans)
        text = profile_report(profile)
        assert "overall:" in text
        assert "slowest tail" in text


class TestCriticalPath:
    def test_attribution_sums_to_makespan(self):
        tracer, profiler = profiled_ycsb_run()
        cp = analyze_critical_path(profiler, tracer.spans)
        assert cp.makespan_us > 0.0
        assert cp.spans_on_path >= 1
        assert math.isclose(sum(cp.attribution.values()), cp.makespan_us,
                            rel_tol=1e-9, abs_tol=1e-9)

    def test_edges_are_ranked_and_typed(self):
        tracer, profiler = profiled_ycsb_run(n_clients=8)
        cp = analyze_critical_path(profiler, tracer.spans)
        assert cp.edges, "8 contending clients should produce queueing"
        weights = [us for us, *_ in cp.edges]
        assert weights == sorted(weights, reverse=True)
        for us, blocker, waiter, label in cp.edges:
            assert us > 0.0
            assert isinstance(blocker, str) and isinstance(waiter, str)
            assert label in profiler_labels(profiler)

    def test_empty_population(self):
        cp = analyze_critical_path(Profiler(), [])
        assert cp.makespan_us == 0.0
        assert critical_report(cp) == "(no finished spans)"

    def test_to_dict_shape(self):
        tracer, profiler = profiled_ycsb_run()
        payload = analyze_critical_path(profiler, tracer.spans).to_dict()
        assert set(payload) == {"makespan_us", "cid", "spans_on_path",
                                "attribution_us", "top_edges"}
        assert sum(payload["attribution_us"].values()) == pytest.approx(
            payload["makespan_us"], abs=1e-3)


def profiler_labels(profiler):
    return {label for _s, _c, label, _a, _b in profiler.intervals}


class TestFoldedStacks:
    def test_lines_sum_to_span_totals(self):
        tracer, profiler = profiled_ycsb_run()
        lines = folded_stacks(profiler, tracer.spans)
        assert lines
        total = 0.0
        for line in lines:
            stack, _, value = line.rpartition(" ")
            frames = stack.split(";")
            assert len(frames) == 3, line
            total += float(value)
        expected = sum(s.duration_us for s in ended(tracer))
        # values carry 6 decimals; rounding error is bounded by the line count
        assert total == pytest.approx(expected, abs=1e-5 * len(lines) + 1e-6)

    def test_stacks_use_op_and_phase_frames(self):
        tracer, profiler = profiled_ycsb_run()
        ops = {line.split(";")[0] for line in
               folded_stacks(profiler, tracer.spans)}
        assert ops <= {"search", "update", "insert", "delete"}
        assert "search" in ops and "update" in ops
