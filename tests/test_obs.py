"""Unit tests for the observability layer (``repro.obs``).

Covers the tracer's span/batch bookkeeping, the metrics registry and its
log-bucketed histograms, the fabric sampler, the three exporters, and
the CLI/report integration points.
"""

import json

import pytest

from repro import ClusterConfig, FuseeCluster, Tracer
from repro.__main__ import main
from repro.core.client import ClientCrashed, CrashPoint
from repro.harness.report import obs_report
from repro.obs import (
    NULL_TRACER,
    Histogram,
    Metrics,
    NullTracer,
    chrome_trace,
    jsonl_lines,
    metrics_table,
    sample_fabric,
    summary_table,
    verb_kind,
    write_chrome_trace,
    write_jsonl,
)
from repro.rdma.verbs import CasOp, FaaOp, ReadOp, WriteOp
from tests.conftest import small_config, run


@pytest.fixture
def traced():
    tracer = Tracer()
    cluster = FuseeCluster(small_config(), tracer=tracer)
    return cluster, cluster.new_client(), tracer


class TestTracerSpans:
    def test_every_client_op_gets_a_span(self, traced):
        cluster, client, tracer = traced
        run(cluster, client.insert(b"k", b"v"))
        run(cluster, client.search(b"k"))
        run(cluster, client.update(b"k", b"v2"))
        run(cluster, client.delete(b"k"))
        assert [s.op for s in tracer.spans] == ["insert", "search",
                                                "update", "delete"]
        assert all(s.ok for s in tracer.spans)
        assert all(s.end_us is not None for s in tracer.spans)
        assert all(s.cid == client.cid for s in tracer.spans)

    def test_span_times_are_simulated(self, traced):
        cluster, client, tracer = traced
        run(cluster, client.insert(b"k", b"v"))
        span = tracer.spans[0]
        assert span.start_us == 0.0
        assert span.end_us == pytest.approx(cluster.env.now)
        assert span.duration_us > 0

    def test_failed_op_recorded_with_ok_false(self, traced):
        cluster, client, tracer = traced
        run(cluster, client.update(b"missing", b"v"))
        span = tracer.last_span("update")
        assert span.ok is False

    def test_crash_ends_span_with_error(self, traced):
        cluster, client, tracer = traced
        run(cluster, client.insert(b"k", b"v"))
        client.arm_crash(CrashPoint.C1)
        with pytest.raises(ClientCrashed):
            run(cluster, client.update(b"k", b"v2"))
        span = tracer.last_span("update")
        assert span.ok is False
        assert span.error == "ClientCrashed"
        assert span.end_us is not None

    def test_batches_record_verb_kind_mn_and_bytes(self, traced):
        cluster, client, tracer = traced
        run(cluster, client.insert(b"k", b"v" * 100))
        span = tracer.spans[0]
        verbs = [v for b in span.batches if b["kind"] == "batch"
                 for v in b["verbs"]]
        assert all(v["kind"] in ("read", "write", "cas", "faa")
                   for v in verbs)
        assert all(v["mn"] in cluster.fabric.nodes for v in verbs)
        assert any(v["bytes"] > 100 for v in verbs
                   if v["kind"] == "write")
        counts = span.verb_counts()
        assert counts.get("write", 0) >= 1 and counts.get("cas", 0) >= 1

    def test_concurrent_ops_attribute_batches_to_own_span(self, traced):
        cluster, client, tracer = traced
        other = cluster.new_client()
        run(cluster, client.insert(b"a", b"1"))
        run(cluster, other.insert(b"b", b"2"))
        env = cluster.env
        env.process(client.search(b"a"), name="c1")
        env.process(other.search(b"b"), name="c2")
        env.run(until=env.now + 50.0)
        by_cid = {s.cid for s in tracer.spans_of("search")}
        assert by_cid == {client.cid, other.cid}
        for span in tracer.spans_of("search"):
            assert span.rtts >= 1

    def test_rpcs_counted_on_span(self, traced):
        cluster, client, tracer = traced
        run(cluster, client.insert(b"k", b"v"))  # ALLOC rpc on first insert
        span = tracer.spans[0]
        assert span.rpcs >= 1
        rpc = next(b for b in span.batches if b["kind"] == "rpc")
        assert rpc["name"] == "alloc_block"
        assert rpc["t1"] is not None and rpc["t1"] > rpc["t0"]

    def test_recovery_paths_are_spanned(self, traced):
        cluster, client, tracer = traced
        run(cluster, client.insert(b"k", b"v"))
        client.arm_crash(CrashPoint.C1)
        with pytest.raises(ClientCrashed):
            run(cluster, client.update(b"k", b"v2"))

        def proc():
            return (yield from cluster.master.recover_client(client.cid))

        run(cluster, proc())
        span = tracer.last_span("recover.client")
        assert span is not None and span.ok
        # The read-heads phase lives on the nested metadata-scan span.
        scan = tracer.last_span("recover.metadata_scan")
        assert scan is not None and scan.ok
        assert "recover.read_heads" in scan.phases()
        assert scan.rtts > 0

    def test_clear_drops_recorded_data(self, traced):
        cluster, client, tracer = traced
        run(cluster, client.insert(b"k", b"v"))
        tracer.clear()
        assert tracer.spans == [] and tracer.orphan_batches == []


class TestNullTracer:
    def test_shared_instance_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_fabric_defaults_to_null_tracer(self):
        cluster = FuseeCluster(small_config())
        assert cluster.fabric.tracer is NULL_TRACER

    def test_untraced_run_records_nothing(self):
        cluster = FuseeCluster(small_config())
        client = cluster.new_client()
        run(cluster, client.insert(b"k", b"v"))
        assert NULL_TRACER.spans == []
        # the singleton's env must never be captured by a cluster
        assert NULL_TRACER.env is None

    def test_attach_tracer_mid_run(self):
        cluster = FuseeCluster(small_config())
        client = cluster.new_client()
        run(cluster, client.insert(b"k", b"v"))
        tracer = Tracer()
        cluster.attach_tracer(tracer)
        assert tracer.env is cluster.env
        run(cluster, client.search(b"k"))
        assert [s.op for s in tracer.spans] == ["search"]


class TestVerbKind:
    def test_kinds(self):
        assert verb_kind(ReadOp(0, 0, 8)) == "read"
        assert verb_kind(WriteOp(0, 0, b"x")) == "write"
        assert verb_kind(CasOp(0, 0, expected=0, swap=1)) == "cas"
        assert verb_kind(FaaOp(0, 0, delta=1)) == "faa"


class TestHistogram:
    def test_percentiles_bound_samples(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.count == 100
        assert hist.mean == pytest.approx(50.5)
        assert 50 <= hist.percentile(50) <= 60   # bucket upper bound
        assert 99 <= hist.percentile(99) <= 100
        assert hist.percentile(99.9) <= hist.max_seen

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.percentile(50) == 0.0
        assert hist.summary()["count"] == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Histogram(base=0)
        with pytest.raises(ValueError):
            Histogram(growth=1.0)


class TestMetricsRegistry:
    def test_create_on_access_and_snapshot(self):
        metrics = Metrics()
        metrics.counter("ops.search").inc(3)
        metrics.gauge("clients").set(4.0)
        metrics.histogram("latency").observe(2.5)
        metrics.timeseries("util").record(1.0, 0.5)
        snap = metrics.snapshot()
        assert snap["counters"] == {"ops.search": 3}
        assert snap["gauges"] == {"clients": 4.0}
        assert snap["histograms"]["latency"]["count"] == 1
        assert snap["series"]["util"]["samples"] == 1
        assert metrics.names() == ["clients", "latency", "ops.search",
                                   "util"]

    def test_same_name_returns_same_instrument(self):
        metrics = Metrics()
        assert metrics.counter("c") is metrics.counter("c")
        assert metrics.histogram("h") is metrics.histogram("h")


class TestSampleFabric:
    def test_sampler_records_nic_and_cpu_series(self):
        tracer = Tracer()
        cluster = FuseeCluster(small_config(), tracer=tracer)
        client = cluster.new_client()
        metrics = Metrics()
        sample_fabric(cluster.env, metrics, cluster.fabric, interval_us=2.0,
                      until_us=100.0)
        run(cluster, client.insert(b"k", b"v" * 200))
        cluster.run(until=100.0)
        names = metrics.names()
        for mn_id in cluster.fabric.nodes:
            assert f"mn{mn_id}.nic_rx.util" in names
            assert f"mn{mn_id}.nic.backlog_us" in names
            assert f"mn{mn_id}.cpu.queue_depth" in names
        busiest = max(
            metrics.timeseries(f"mn{mn}.nic_rx.util").peak()
            for mn in cluster.fabric.nodes)
        assert 0.0 < busiest <= 1.0


class TestExporters:
    def _tracer_with_ops(self):
        tracer = Tracer()
        cluster = FuseeCluster(small_config(), tracer=tracer)
        client = cluster.new_client()
        run(cluster, client.insert(b"k", b"v"))
        run(cluster, client.search(b"k"))
        return tracer

    def test_chrome_trace_shape(self):
        trace = chrome_trace(self._tracer_with_ops())
        events = trace["traceEvents"]
        assert {e["ph"] for e in events} <= {"X", "M"}
        kvops = [e for e in events if e.get("cat") == "kvop"]
        assert [e["name"] for e in kvops] == ["insert", "search"]
        verbs = [e for e in events if e.get("cat") == "verb"]
        assert verbs and all(e["pid"] == 2 for e in verbs)
        assert all(e["dur"] >= 0 for e in kvops + verbs)
        names = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in names)

    def test_chrome_trace_file_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._tracer_with_ops(), path)
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        assert data["traceEvents"]

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = self._tracer_with_ops()
        path = tmp_path / "events.jsonl"
        write_jsonl(tracer, path)
        lines = path.read_text().splitlines()
        assert lines == jsonl_lines(tracer)
        spans = [json.loads(line) for line in lines]
        assert [s["op"] for s in spans if s["type"] == "span"] == \
            ["insert", "search"]

    def test_summary_table_lists_ops(self):
        table = summary_table(self._tracer_with_ops())
        assert "insert" in table and "search" in table
        assert "mean_rtts" in table

    def test_empty_tables(self):
        assert "no spans" in summary_table(Tracer())
        assert "no metrics" in metrics_table(Metrics())

    def test_metrics_table_renders_all_sections(self):
        metrics = Metrics()
        metrics.counter("c").inc()
        metrics.gauge("g").set(1.0)
        metrics.histogram("h").observe(1.0)
        metrics.timeseries("s").record(0.0, 1.0)
        table = metrics_table(metrics)
        for section in ("counters:", "gauges:", "histograms", "series:"):
            assert section in table

    def test_obs_report_combines_sections(self):
        tracer = self._tracer_with_ops()
        metrics = Metrics()
        metrics.counter("ops.search").inc()
        report = obs_report(tracer, metrics)
        assert "per-operation spans" in report
        assert "metrics" in report
        assert obs_report(None, None) == "(no observability data)"


class TestCliFlags:
    def test_demo_trace_and_metrics_flags(self, tmp_path, capsys):
        trace = tmp_path / "demo.json"
        jsonl = tmp_path / "demo.jsonl"
        assert main(["demo", "--trace", str(trace), "--jsonl", str(jsonl),
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "per-operation spans" in out
        assert "nic_rx.util" in out
        data = json.loads(trace.read_text())
        assert data["traceEvents"]
        assert jsonl.read_text().strip()

    def test_ycsb_command_with_trace(self, tmp_path, capsys):
        trace = tmp_path / "ycsb.json"
        assert main(["ycsb", "--keys", "200", "--clients", "2",
                     "--duration-us", "1000", "--trace", str(trace),
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "Mops" in out
        assert "latency_us.search" in out
        assert json.loads(trace.read_text())["traceEvents"]
