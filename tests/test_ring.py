"""Tests for the consistent hashing ring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ring import ConsistentHashRing


class TestBasics:
    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])

    def test_single_node_owns_everything(self):
        ring = ConsistentHashRing([7])
        for key in range(50):
            assert ring.primary(key) == 7

    def test_replicas_distinct(self):
        ring = ConsistentHashRing(range(5))
        for key in range(100):
            replicas = ring.replicas(key, 3)
            assert len(replicas) == len(set(replicas)) == 3

    def test_replicas_deterministic(self):
        a = ConsistentHashRing(range(4))
        b = ConsistentHashRing(range(4))
        for key in range(100):
            assert a.replicas(key, 2) == b.replicas(key, 2)

    def test_too_many_replicas_rejected(self):
        ring = ConsistentHashRing(range(2))
        with pytest.raises(ValueError):
            ring.replicas(1, 3)

    def test_zero_replicas_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(range(2)).replicas(1, 0)

    def test_duplicate_node_rejected(self):
        ring = ConsistentHashRing([1, 2])
        with pytest.raises(ValueError):
            ring.add_node(1)

    def test_remove_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([1]).remove_node(9)


class TestDistribution:
    def test_reasonable_balance(self):
        """With virtual nodes, primary ownership should be roughly even."""
        ring = ConsistentHashRing(range(4), virtual_nodes=128)
        counts = {n: 0 for n in range(4)}
        n_keys = 2000
        for key in range(n_keys):
            counts[ring.primary(key)] += 1
        for count in counts.values():
            assert n_keys / 4 * 0.5 < count < n_keys / 4 * 1.8

    def test_minimal_disruption_on_node_removal(self):
        """Consistent hashing: removing a node only moves its keys."""
        ring = ConsistentHashRing(range(4), virtual_nodes=64)
        before = {key: ring.primary(key) for key in range(500)}
        ring.remove_node(2)
        for key, owner in before.items():
            if owner != 2:
                assert ring.primary(key) == owner

    def test_add_node_steals_some_keys(self):
        ring = ConsistentHashRing(range(3), virtual_nodes=64)
        before = {key: ring.primary(key) for key in range(500)}
        ring.add_node(3)
        moved = sum(1 for key in before if ring.primary(key) != before[key])
        assert 0 < moved < 350  # some keys move, but only to the new node
        for key in before:
            now = ring.primary(key)
            assert now == before[key] or now == 3

    def test_replica_chain_follows_ring_order(self):
        """The first replica of replicas(k, r) equals primary(k)."""
        ring = ConsistentHashRing(range(5))
        for key in range(200):
            assert ring.replicas(key, 3)[0] == ring.primary(key)

    @given(key=st.integers(min_value=0, max_value=1 << 60),
           r=st.integers(min_value=1, max_value=5))
    @settings(max_examples=50)
    def test_replicas_prefix_property(self, key, r):
        """replicas(k, r) is a prefix of replicas(k, r+1)."""
        ring = ConsistentHashRing(range(6))
        longer = ring.replicas(key, min(r + 1, 6))
        assert ring.replicas(key, r) == longer[:r]
