"""Trace determinism: same seed => byte-identical trace output.

The simulation is a deterministic function of its seeds, and the tracer
records only simulated time and verb contents (no wall clock, no memory
addresses).  So the JSONL rendering of a seeded YCSB run must be
byte-for-byte reproducible — that property is what makes traces usable
as regression artifacts (diff two trace files to see exactly where an
optimisation changed the verb stream).
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Tracer
from repro.harness.runner import run_closed_loop
from repro.harness.systems import fusee_bed
from repro.obs import (
    Metrics,
    Profiler,
    chrome_trace,
    folded_stacks,
    jsonl_lines,
    sample_fabric,
)
from repro.workloads import YcsbConfig, YcsbWorkload


def traced_ycsb_run(seed: int, duration_us: float = 1500.0, profile=False,
                    metrics=False, replication=None):
    """Build a small FUSEE bed, run seeded YCSB-A clients, return the
    tracer (bulk load is untraced; only the measured run is recorded).
    With ``profile``/``metrics``, also return a profiler and a sampled
    metrics registry (in that order).  ``replication`` selects the slot
    replication strategy (default: the bed's, i.e. snapshot)."""
    bed = fusee_bed(n_memory_nodes=2, replication_factor=2,
                    dataset_bytes=1 << 18, background_interval_us=0.0,
                    replication=replication)
    config = YcsbConfig(workload="A", n_keys=200)
    seeder = YcsbWorkload(config, seed=seed)
    bed.load((key, seeder.load_value(i))
             for i, key in enumerate(seeder.load_keys()))
    tracer = Tracer()
    bed.cluster.attach_tracer(tracer)
    out = [tracer]
    if profile:
        out.append(Profiler(tracer=tracer).install(bed.env))
    if metrics:
        registry = Metrics()
        sample_fabric(bed.env, registry, bed.cluster.fabric,
                      interval_us=50.0)
        out.append(registry)
    clients = [bed.new_client() for _ in range(2)]
    run_closed_loop(bed.env, clients,
                    lambda index: YcsbWorkload(config, seed=seed + 1 + index),
                    bed.execute, duration_us=duration_us,
                    fast=not profile)
    return out[0] if len(out) == 1 else tuple(out)


class TestTraceDeterminism:
    def test_same_seed_gives_identical_jsonl(self):
        first = jsonl_lines(traced_ycsb_run(seed=7))
        second = jsonl_lines(traced_ycsb_run(seed=7))
        assert len(first) > 50  # a real run, not a trivial one
        assert first == second

    def test_same_seed_gives_identical_chrome_trace(self):
        first = json.dumps(chrome_trace(traced_ycsb_run(seed=7)),
                           sort_keys=True)
        second = json.dumps(chrome_trace(traced_ycsb_run(seed=7)),
                            sort_keys=True)
        assert first == second

    def test_different_seed_gives_different_trace(self):
        first = jsonl_lines(traced_ycsb_run(seed=7))
        second = jsonl_lines(traced_ycsb_run(seed=8))
        assert first != second

    def test_jsonl_lines_are_valid_sorted_json(self):
        lines = jsonl_lines(traced_ycsb_run(seed=7))
        for line in lines:
            record = json.loads(line)
            assert record["type"] in ("span", "fabric_event")
            # canonical rendering: re-dumping must reproduce the line
            assert json.dumps(record, sort_keys=True,
                              separators=(",", ":")) == line


def scaled_ycsb_trace(seed: int, n_clients: int = 256,
                      n_memory_nodes: int = 8, nic_ports: int = 4,
                      rpc_shards: int = 2, duration_us: float = 250.0):
    """A multi-queue bed at scale-test size (hundreds of clients, many
    MNs), short measured window to keep the wall clock bounded."""
    bed = fusee_bed(n_memory_nodes=n_memory_nodes, replication_factor=2,
                    dataset_bytes=1 << 18, background_interval_us=0.0,
                    nic_ports=nic_ports, rpc_shards=rpc_shards,
                    port_affinity="rss",
                    max_clients=n_clients + 8)
    config = YcsbConfig(workload="A", n_keys=200)
    seeder = YcsbWorkload(config, seed=seed)
    bed.load((key, seeder.load_value(i))
             for i, key in enumerate(seeder.load_keys()))
    tracer = Tracer()
    bed.cluster.attach_tracer(tracer)
    clients = [bed.new_client() for _ in range(n_clients)]
    run_closed_loop(bed.env, clients,
                    lambda index: YcsbWorkload(config, seed=seed + 1 + index),
                    bed.execute, duration_us=duration_us)
    return jsonl_lines(tracer)


class TestScaledBedDeterminism:
    """The scale-test beds inherit the determinism contract: a fixed
    seed on a 256-client / 8-MN multi-queue bed renders byte-identical
    JSONL traces across independent runs."""

    def test_256_client_8_mn_multiqueue_trace_is_reproducible(self):
        first = scaled_ycsb_trace(seed=13)
        second = scaled_ycsb_trace(seed=13)
        assert len(first) > 500  # hundreds of clients really ran
        assert first == second

    def test_scaled_bed_seed_still_matters(self):
        assert scaled_ycsb_trace(seed=13, n_clients=64, n_memory_nodes=4,
                                 duration_us=150.0) != \
            scaled_ycsb_trace(seed=14, n_clients=64, n_memory_nodes=4,
                              duration_us=150.0)


class TestFastReferenceDifferential:
    """The fast drain loop is an *optimisation*, not a semantic change:
    under ``kernel_mode("reference")`` every event pops through the slow,
    unpooled, hook-checking loop, and the rendered JSONL must still be
    byte-for-byte what the fast path produced.  These are the enforcement
    teeth behind the ISSUE's "bit-for-bit" claim — a reordered callback,
    a float shortcut, or a pooling bug shows up here as a trace diff.
    """

    def test_64c_2mn_bed_fast_vs_reference_byte_identical(self):
        from repro.sim.core import kernel_mode

        fast = scaled_ycsb_trace(seed=7, n_clients=64, n_memory_nodes=2,
                                 duration_us=150.0)
        with kernel_mode("reference"):
            slow = scaled_ycsb_trace(seed=7, n_clients=64, n_memory_nodes=2,
                                     duration_us=150.0)
        assert len(fast) > 200  # the microbench bed really ran
        assert fast == slow

    def test_256c_8mn_bed_fast_vs_reference_byte_identical(self):
        from repro.sim.core import kernel_mode

        fast = scaled_ycsb_trace(seed=11)
        with kernel_mode("reference"):
            slow = scaled_ycsb_trace(seed=11)
        assert len(fast) > 500
        assert fast == slow

    def test_profiler_on_vs_off_trace_byte_identical(self):
        """Installing the profiler must only *observe*: span/fabric JSONL
        from a profiled run matches the unprofiled run byte-for-byte."""
        plain = jsonl_lines(traced_ycsb_run(seed=7))
        profiled, _ = traced_ycsb_run(seed=7, profile=True)
        assert plain == jsonl_lines(profiled)


def _inline_replicated_write(self, ref, v_old, v_new, prepared):
    """The pre-seam ``FuseeClient._replicated_write``, copied verbatim:
    inline if/else dispatch on ``replication_mode`` instead of the
    ``ReplicationProtocol`` strategy object."""
    from repro.core.client import CrashPoint, sequential_write, \
        snapshot_write

    on_win = None
    if prepared is not None and len(ref.placement) > 1:
        on_win = self._log_committer(prepared)
    if self.config.replication_mode == "sequential":
        result = yield from sequential_write(self.fabric, ref, v_old,
                                             v_new, on_win=on_win)
    else:
        result = yield from snapshot_write(
            self.fabric, ref, v_old, v_new, on_win=on_win,
            retry_sleep_us=self.config.retry_sleep_us,
            phase_guard=lambda: self._wait_if_blocked(ref.subtable))
    self._maybe_crash(CrashPoint.C3)
    self.stats.count_outcome(result.outcome)
    return result


class TestReplicationSeamDifferential:
    """The ``ReplicationProtocol`` seam is a *pure refactor* for the
    existing protocols: dispatching snapshot/sequential writes through
    the strategy object must render the exact JSONL trace the
    pre-refactor inline if/else produced — same verbs, same phases, same
    timings, byte for byte.  Hypothesis drives the seeds so the property
    holds across workloads, not just one lucky run."""

    @staticmethod
    def _with_inline_dispatch(fn):
        from repro.core.client import FuseeClient

        seam = FuseeClient._replicated_write
        FuseeClient._replicated_write = _inline_replicated_write
        try:
            return fn()
        finally:
            FuseeClient._replicated_write = seam

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_snapshot_seam_trace_matches_pre_refactor(self, seed):
        seam = jsonl_lines(traced_ycsb_run(seed=seed, duration_us=800.0))
        inline = self._with_inline_dispatch(
            lambda: jsonl_lines(traced_ycsb_run(seed=seed,
                                                duration_us=800.0)))
        assert len(seam) > 30
        assert seam == inline

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sequential_seam_trace_matches_pre_refactor(self, seed):
        def run():
            return jsonl_lines(traced_ycsb_run(seed=seed, duration_us=800.0,
                                               replication="sequential"))

        assert run() == self._with_inline_dispatch(run)

    def test_swarm_trace_is_deterministic(self):
        """The new strategy inherits the determinism contract."""
        first = jsonl_lines(traced_ycsb_run(seed=7, replication="swarm"))
        second = jsonl_lines(traced_ycsb_run(seed=7, replication="swarm"))
        assert len(first) > 50
        assert first == second

    def test_swarm_trace_differs_from_snapshot(self):
        """Sanity: the mode knob actually changes the verb stream (a
        silently ignored knob would pass every equivalence test)."""
        assert jsonl_lines(traced_ycsb_run(seed=7, replication="swarm")) \
            != jsonl_lines(traced_ycsb_run(seed=7))


class TestProfileDeterminism:
    """The profiler's outputs inherit the trace determinism contract."""

    def test_same_seed_gives_identical_profile_json(self):
        from repro.obs import RunProfile, analyze_critical_path

        def payload(seed):
            tracer, profiler = traced_ycsb_run(seed=seed, profile=True)
            bundle = {
                "profile": RunProfile.collect(
                    profiler, tracer.spans).to_dict(),
                "critical": analyze_critical_path(
                    profiler, tracer.spans).to_dict(),
            }
            return json.dumps(bundle, indent=2, sort_keys=True)

        first = payload(seed=7)
        assert first == payload(seed=7)
        assert json.loads(first)["profile"]["overall"]["count"] > 50

    def test_same_seed_gives_identical_folded_stacks(self):
        tracer1, prof1 = traced_ycsb_run(seed=7, profile=True)
        tracer2, prof2 = traced_ycsb_run(seed=7, profile=True)
        lines = folded_stacks(prof1, tracer1.spans)
        assert lines == folded_stacks(prof2, tracer2.spans)
        assert lines

    def test_folded_values_sum_to_span_durations(self):
        tracer, profiler = traced_ycsb_run(seed=7, profile=True)
        lines = folded_stacks(profiler, tracer.spans)
        total = sum(float(line.rpartition(" ")[2]) for line in lines)
        expected = sum(s.duration_us for s in tracer.spans
                       if s.end_us is not None)
        # each line carries 6 decimals -> bounded per-line rounding error
        assert abs(total - expected) <= 1e-5 * len(lines) + 1e-6


def monitored_ycsb_trace(seed: int, duration_us: float = 1500.0,
                         monitored: bool = True, slos=()):
    """Like :func:`traced_ycsb_run` but with the online monitor attached;
    returns ``(jsonl_lines, health)`` (health None when unmonitored)."""
    from repro.obs import Monitor, MonitorConfig, SloSpec

    bed = fusee_bed(n_memory_nodes=2, replication_factor=2,
                    dataset_bytes=1 << 18, background_interval_us=0.0)
    config = YcsbConfig(workload="A", n_keys=200)
    seeder = YcsbWorkload(config, seed=seed)
    bed.load((key, seeder.load_value(i))
             for i, key in enumerate(seeder.load_keys()))
    tracer = Tracer()
    bed.cluster.attach_tracer(tracer)
    monitor = None
    if monitored:
        monitor = Monitor(bed.env, bed.cluster.fabric,
                          config=MonitorConfig(hotkey_capacity=8),
                          slos=[SloSpec.parse(s) for s in slos],
                          race=bed.cluster.race)
        bed.cluster.attach_monitor(monitor)
    clients = [bed.new_client() for _ in range(2)]
    result = run_closed_loop(bed.env, clients,
                             lambda index: YcsbWorkload(config,
                                                        seed=seed + 1 + index),
                             bed.execute, duration_us=duration_us,
                             monitor=monitor)
    return jsonl_lines(tracer), result.health


class TestMonitorDeterminism:
    """The telemetry plane inherits the determinism contract: window
    edges are pure functions of simulated time, sketches are exactly
    mergeable, and the monitor only observes — so health reports are
    byte-identical across same-seed runs, and a monitored clean run's
    *operation* records are byte-identical to the unmonitored run."""

    def test_same_seed_gives_identical_health_fingerprint(self):
        from repro.obs import health_fingerprint

        _lines1, health1 = monitored_ycsb_trace(seed=7)
        _lines2, health2 = monitored_ycsb_trace(seed=7)
        fp = health_fingerprint(health1)
        assert fp == health_fingerprint(health2)
        assert '"rows":' in fp       # window rows are part of the print

    def test_window_edges_are_seed_stable(self):
        _lines, health = monitored_ycsb_trace(seed=7)
        rows = health["windows"]["rows"]
        width = health["windows"]["width_us"]
        assert rows
        for row in rows:
            assert row["t0"] == row["pane"] * width
            assert row["t1"] == (row["pane"] + 1) * width

    def test_monitored_clean_run_trace_matches_unmonitored(self):
        """Alert spans ride negative sids; everything with sid >= 0 (ops
        and fabric events) must be byte-identical to the bare run."""
        import json as _json

        plain, _none = monitored_ycsb_trace(seed=7, monitored=False)
        monitored, health = monitored_ycsb_trace(
            seed=7, slos=("latency:all:p99:0.001",))
        assert health["slos"][0]["windows_tripped"] > 0  # alerts emitted

        def op_records(lines):
            keep = []
            for line in lines:
                sid = _json.loads(line).get("sid")
                if sid is None or sid >= 0:
                    keep.append(line)
            return keep

        assert op_records(monitored) != monitored  # filter removed alerts
        assert op_records(monitored) == plain


class TestChromeCounterTracks:
    def test_counter_events_are_valid_and_time_ordered(self):
        tracer, metrics = traced_ycsb_run(seed=7, metrics=True)
        doc = json.loads(json.dumps(chrome_trace(tracer, metrics=metrics)))
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert counters, "sample_fabric produced no counter events"
        by_series = {}
        for event in counters:
            assert event["cat"] == "counter"
            assert isinstance(event["ts"], float) and event["ts"] >= 0.0
            assert isinstance(event["args"]["value"], (int, float))
            by_series.setdefault(event["name"], []).append(event["ts"])
        for name, stamps in by_series.items():
            assert stamps == sorted(stamps), f"{name} not time-ordered"
        # per-MN CPU utilisation made it into the tracks (satellite b)
        assert "mn0.cpu.util" in by_series and "mn1.cpu.util" in by_series

    def test_span_events_have_monotone_nonnegative_extents(self):
        tracer = traced_ycsb_run(seed=7)
        doc = chrome_trace(tracer)
        for event in doc["traceEvents"]:
            if event.get("ph") != "X":
                continue
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
