"""Trace determinism: same seed => byte-identical trace output.

The simulation is a deterministic function of its seeds, and the tracer
records only simulated time and verb contents (no wall clock, no memory
addresses).  So the JSONL rendering of a seeded YCSB run must be
byte-for-byte reproducible — that property is what makes traces usable
as regression artifacts (diff two trace files to see exactly where an
optimisation changed the verb stream).
"""

import json

from repro import Tracer
from repro.harness.runner import run_closed_loop
from repro.harness.systems import fusee_bed
from repro.obs import chrome_trace, jsonl_lines
from repro.workloads import YcsbConfig, YcsbWorkload


def traced_ycsb_run(seed: int, duration_us: float = 1500.0):
    """Build a small FUSEE bed, run seeded YCSB-A clients, return the
    tracer (bulk load is untraced; only the measured run is recorded)."""
    bed = fusee_bed(n_memory_nodes=2, replication_factor=2,
                    dataset_bytes=1 << 18, background_interval_us=0.0)
    config = YcsbConfig(workload="A", n_keys=200)
    seeder = YcsbWorkload(config, seed=seed)
    bed.load((key, seeder.load_value(i))
             for i, key in enumerate(seeder.load_keys()))
    tracer = Tracer()
    bed.cluster.attach_tracer(tracer)
    clients = [bed.new_client() for _ in range(2)]
    run_closed_loop(bed.env, clients,
                    lambda index: YcsbWorkload(config, seed=seed + 1 + index),
                    bed.execute, duration_us=duration_us)
    return tracer


class TestTraceDeterminism:
    def test_same_seed_gives_identical_jsonl(self):
        first = jsonl_lines(traced_ycsb_run(seed=7))
        second = jsonl_lines(traced_ycsb_run(seed=7))
        assert len(first) > 50  # a real run, not a trivial one
        assert first == second

    def test_same_seed_gives_identical_chrome_trace(self):
        first = json.dumps(chrome_trace(traced_ycsb_run(seed=7)),
                           sort_keys=True)
        second = json.dumps(chrome_trace(traced_ycsb_run(seed=7)),
                            sort_keys=True)
        assert first == second

    def test_different_seed_gives_different_trace(self):
        first = jsonl_lines(traced_ycsb_run(seed=7))
        second = jsonl_lines(traced_ycsb_run(seed=8))
        assert first != second

    def test_jsonl_lines_are_valid_sorted_json(self):
        lines = jsonl_lines(traced_ycsb_run(seed=7))
        for line in lines:
            record = json.loads(line)
            assert record["type"] in ("span", "fabric_event")
            # canonical rendering: re-dumping must reproduce the line
            assert json.dumps(record, sort_keys=True,
                              separators=(",", ":")) == line
