"""Tests for two-level memory management (§4.4)."""

import pytest

from repro.core.memory import (
    AllocationError,
    pack_block_entry,
    size_classes_for,
    unpack_block_entry,
)
from repro.core.wire import NULL_ADDR
from tests.conftest import small_config, run
from repro.core import FuseeCluster


@pytest.fixture
def cluster():
    return FuseeCluster(small_config())


@pytest.fixture
def client(cluster):
    return cluster.new_client()


def alloc(cluster, client, class_idx):
    def proc():
        return (yield from client.allocator.alloc(class_idx))
    return run(cluster, proc())


class TestSizeClasses:
    def test_geometric_growth_aligned(self):
        classes = size_classes_for(64, 1 << 16)
        assert classes[0] == 64
        for a, b in zip(classes, classes[1:]):
            assert b > a
            assert b % 64 == 0       # bitmap bits map to exact offsets
            assert b <= 2 * a        # bounded internal fragmentation

    def test_largest_override(self):
        classes = size_classes_for(64, 1 << 16, largest=256)
        assert classes[0] == 64
        assert classes[-1] <= 256
        assert 256 in classes

    def test_class_for_picks_smallest_fit(self, client):
        assert client.allocator.size_classes[
            client.allocator.class_for(65)] == 128
        assert client.allocator.size_classes[
            client.allocator.class_for(64)] == 64

    def test_class_for_oversized_rejected(self, client):
        with pytest.raises(AllocationError):
            client.allocator.class_for(1 << 30)


class TestBlockEntries:
    def test_roundtrip(self):
        assert unpack_block_entry(pack_block_entry(12, 3)) == (12, 3)

    def test_free_block_is_none(self):
        assert unpack_block_entry(0) is None

    def test_cid_range(self):
        with pytest.raises(ValueError):
            pack_block_entry(1 << 16, 0)


class TestMnAllocation:
    def test_alloc_records_cid_in_all_replicas(self, cluster, client):
        alloc(cluster, client, 0)
        region_id, block, class_idx = client.allocator.owned_blocks()[0]
        layout = cluster.region_map.layout
        entry_off = layout.block_table_entry_offset(block)
        for mn_id, base in cluster.region_map.placement(region_id):
            word = cluster.fabric.node(mn_id).read_word(base + entry_off)
            assert unpack_block_entry(word) == (client.cid, class_idx)

    def test_bitmap_zeroed_on_alloc(self, cluster, client):
        alloc(cluster, client, 0)
        region_id, block, _ = client.allocator.owned_blocks()[0]
        layout = cluster.region_map.layout
        mn_id, base = cluster.region_map.placement(region_id)[0]
        off = layout.bitmap_offset_of(block)
        bitmap = cluster.fabric.node(mn_id).memory[
            base + off:base + off + layout.bitmap_bytes_per_block]
        assert bitmap == bytearray(layout.bitmap_bytes_per_block)

    def test_exhaustion_raises(self, cluster, client):
        layout = cluster.region_map.layout
        total_blocks = layout.n_blocks * len(cluster.region_map.region_ids)
        objects_per_block = cluster.region_map.config.block_size // 64
        with pytest.raises(AllocationError):
            for _ in range(total_blocks * objects_per_block + 1):
                alloc(cluster, client, 0)

    def test_find_client_blocks_rpc(self, cluster, client):
        for _ in range(3):
            alloc(cluster, client, 0)
        owned = set(client.allocator.owned_blocks())
        found = set()

        def proc():
            for mn_id in cluster.fabric.nodes:
                reply = yield cluster.fabric.rpc(
                    mn_id, "find_client_blocks", {"cid": client.cid})
                for info in reply["blocks"]:
                    found.add((info["region"], info["block"],
                               info["class_idx"]))

        run(cluster, proc())
        assert owned <= found  # watermark may have adopted extra blocks
        assert len(found) == client.allocator.stats_blocks_allocated


class TestClientSlabs:
    def test_alloc_addresses_distinct(self, cluster, client):
        seen = set()
        for _ in range(50):
            result = alloc(cluster, client, 0)
            assert result.gaddr not in seen
            seen.add(result.gaddr)

    def test_alloc_pointers_prepositioned(self, cluster, client):
        first = alloc(cluster, client, 1)
        second = alloc(cluster, client, 1)
        assert first.prev_ptr == NULL_ADDR
        assert first.next_ptr == second.gaddr
        assert second.prev_ptr == first.gaddr

    def test_alloc_order_is_fifo(self, cluster, client):
        """The pre-determined allocation order: next_ptr always names the
        very next allocation of that class (§4.5)."""
        results = [alloc(cluster, client, 0) for _ in range(30)]
        for a, b in zip(results, results[1:]):
            assert a.next_ptr == b.gaddr

    def test_distinct_classes_use_distinct_blocks(self, cluster, client):
        a = alloc(cluster, client, 0)
        b = alloc(cluster, client, 2)
        layout = cluster.region_map.layout
        ra, oa = cluster.region_map.split(a.gaddr)
        rb, ob = cluster.region_map.split(b.gaddr)
        assert (ra, layout.block_index_of(oa)) != (rb, layout.block_index_of(ob))

    def test_head_published_to_all_mns(self, cluster, client):
        first = alloc(cluster, client, 0)
        for mn_id, addr in cluster.client_table.locations(client.cid, 0):
            word = cluster.fabric.node(mn_id).read_word(addr)
            assert word == first.gaddr

    def test_head_stable_after_more_allocs(self, cluster, client):
        first = alloc(cluster, client, 0)
        for _ in range(5):
            alloc(cluster, client, 0)
        assert client.allocator.head(0) == first.gaddr

    def test_objects_aligned_to_class_size(self, cluster, client):
        layout = cluster.region_map.layout
        size = client.allocator.size_classes[2]
        for _ in range(10):
            result = alloc(cluster, client, 2)
            _, offset = cluster.region_map.split(result.gaddr)
            block = layout.block_index_of(offset)
            within = offset - layout.block_offset(block)
            assert within % size == 0

    def test_two_clients_get_disjoint_blocks(self, cluster):
        c1, c2 = cluster.new_client(), cluster.new_client()
        for _ in range(5):
            alloc(cluster, c1, 0)
            alloc(cluster, c2, 0)
        blocks1 = {(r, b) for r, b, _ in c1.allocator.owned_blocks()}
        blocks2 = {(r, b) for r, b, _ in c2.allocator.owned_blocks()}
        assert not blocks1 & blocks2


class TestFreeAndReclaim:
    def test_note_free_is_local(self, cluster, client):
        result = alloc(cluster, client, 0)
        client.allocator.note_free(result.gaddr)
        assert client.allocator.pending_free_count == 1

    def test_flush_sets_bit_on_all_replicas(self, cluster, client):
        result = alloc(cluster, client, 0)
        client.allocator.note_free(result.gaddr)

        def proc():
            yield from client.allocator.flush_frees()

        run(cluster, proc())
        assert client.allocator.pending_free_count == 0
        layout = cluster.region_map.layout
        region_id, offset = cluster.region_map.split(result.gaddr)
        byte_off, bit = layout.object_bit(offset)
        for mn_id, base in cluster.region_map.placement(region_id):
            byte = cluster.fabric.node(mn_id).memory[base + byte_off]
            assert byte & (1 << bit)

    def test_reclaim_returns_object_to_free_list(self, cluster, client):
        result = alloc(cluster, client, 0)
        before = client.allocator.free_list_len(0)
        client.allocator.note_free(result.gaddr)

        def proc():
            yield from client.allocator.flush_frees()
            return (yield from client.allocator.reclaim())

        reclaimed = run(cluster, proc())
        assert reclaimed == 1
        assert client.allocator.free_list_len(0) == before + 1

    def test_reclaim_clears_bitmap(self, cluster, client):
        result = alloc(cluster, client, 0)
        client.allocator.note_free(result.gaddr)

        def proc():
            yield from client.allocator.flush_frees()
            yield from client.allocator.reclaim()

        run(cluster, proc())
        layout = cluster.region_map.layout
        region_id, offset = cluster.region_map.split(result.gaddr)
        byte_off, bit = layout.object_bit(offset)
        mn_id, base = cluster.region_map.placement(region_id)[0]
        assert not cluster.fabric.node(mn_id).memory[base + byte_off] & (1 << bit)

    def test_reclaimed_object_reusable(self, cluster, client):
        result = alloc(cluster, client, 0)
        client.allocator.note_free(result.gaddr)

        def proc():
            yield from client.allocator.flush_frees()
            yield from client.allocator.reclaim()

        run(cluster, proc())
        seen = set()
        for _ in range(client.allocator.free_list_len(0)):
            seen.add(alloc(cluster, client, 0).gaddr)
            if result.gaddr in seen:
                break
        assert result.gaddr in seen

    def test_cross_client_free(self, cluster):
        """Any client can free; only the owner reclaims (§4.4)."""
        owner, other = cluster.new_client(), cluster.new_client()
        result = alloc(cluster, owner, 0)
        other.allocator.note_free(result.gaddr)

        def proc():
            yield from other.allocator.flush_frees()
            return (yield from owner.allocator.reclaim())

        assert run(cluster, proc()) == 1

    def test_reclaim_empty_is_noop(self, cluster, client):
        alloc(cluster, client, 0)

        def proc():
            return (yield from client.allocator.reclaim())

        assert run(cluster, proc()) == 0

    def test_flush_empty_is_noop(self, cluster, client):
        def proc():
            yield from client.allocator.flush_frees()
            return "done"

        assert run(cluster, proc()) == "done"


class TestBlockFree:
    def drain(self, cluster, client, class_idx, n):
        return [alloc(cluster, client, class_idx) for _ in range(n)]

    def release(self, cluster, client):
        def proc():
            return (yield from client.allocator.release_empty_blocks())
        return run(cluster, proc())

    def test_untouched_spare_block_released(self, cluster, client):
        """The refill watermark may adopt an extra block; once nothing of
        it is allocated, release_empty_blocks returns it to the MN."""
        results = self.drain(cluster, client, 0, 3)
        for result in results:
            client.allocator.note_free(result.gaddr)

        def proc():
            yield from client.allocator.flush_frees()
            yield from client.allocator.reclaim()
            return (yield from client.allocator.release_empty_blocks())

        released = run(cluster, proc())
        assert released >= 0  # releasing is best-effort
        # whatever remains must still satisfy allocations
        again = alloc(cluster, client, 0)
        assert again.gaddr != 0

    def test_fully_freed_block_returns_to_pool(self, cluster, client):
        layout = cluster.region_map.layout
        size = client.allocator.size_classes[3]
        objects = layout.config.block_size // size
        results = self.drain(cluster, client, 3, objects)  # a full block
        owned_before = len(client.allocator.owned_blocks())
        for result in results:
            client.allocator.note_free(result.gaddr)

        def proc():
            yield from client.allocator.flush_frees()
            yield from client.allocator.reclaim()
            return (yield from client.allocator.release_empty_blocks())

        released = run(cluster, proc())
        assert released >= 1
        assert len(client.allocator.owned_blocks()) < owned_before + 2

    def test_released_block_table_entry_cleared(self, cluster, client):
        layout = cluster.region_map.layout
        size = client.allocator.size_classes[3]
        objects = layout.config.block_size // size
        results = self.drain(cluster, client, 3, objects)
        target_block = None
        for region_id, block, cls in client.allocator.owned_blocks():
            if cls == 3:
                target_block = (region_id, block)
        for result in results:
            client.allocator.note_free(result.gaddr)

        def proc():
            yield from client.allocator.flush_frees()
            yield from client.allocator.reclaim()
            return (yield from client.allocator.release_empty_blocks())

        released = run(cluster, proc())
        if released:
            freed = [
                (r, b) for (r, b) in [target_block]
                if (r, b, 3) not in client.allocator.owned_blocks()]
            for region_id, block in freed:
                entry_off = layout.block_table_entry_offset(block)
                for mn_id, base in cluster.region_map.placement(region_id):
                    word = cluster.fabric.node(mn_id).read_word(
                        base + entry_off)
                    assert word == 0

    def test_released_block_reallocatable_by_other_client(self, cluster):
        a, b = cluster.new_client(), cluster.new_client()
        layout = cluster.region_map.layout
        size = a.allocator.size_classes[3]
        objects = layout.config.block_size // size
        results = [alloc(cluster, a, 3) for _ in range(objects)]
        for result in results:
            a.allocator.note_free(result.gaddr)

        def proc():
            yield from a.allocator.flush_frees()
            yield from a.allocator.reclaim()
            return (yield from a.allocator.release_empty_blocks())

        released = run(cluster, proc())
        if released:
            # b can allocate (possibly getting the released block back)
            result = alloc(cluster, b, 3)
            assert result.gaddr != 0

    def test_free_block_rpc_rejects_non_owner(self, cluster, client):
        alloc(cluster, client, 0)
        region_id, block, _cls = client.allocator.owned_blocks()[0]
        primary_mn = cluster.region_map.placement(region_id)[0][0]

        def proc():
            return (yield cluster.fabric.rpc(
                primary_mn, "free_block",
                {"region": region_id, "block": block, "cid": 9999}))

        reply = run(cluster, proc())
        assert reply.get("error") == "not_owner"

    def test_release_preserves_log_chain_walkability(self, cluster):
        """Regression: releasing a block must never remove the free-list
        head — the last allocation's pre-positioned next pointer names it,
        and the recovery log walk follows that pointer (§4.5)."""
        from repro.core.client import ClientCrashed, CrashPoint
        from repro.core.wire import kv_block_size
        client = cluster.new_client()
        layout = cluster.region_map.layout
        class_idx = client.allocator.class_for(kv_block_size(10, 300))
        size = client.allocator.size_classes[class_idx]
        per_block = layout.config.block_size // size
        # fill ~1.5 blocks with keys, then delete the first block's worth
        n = per_block + per_block // 2
        keys = [f"chain-{i:04d}".encode() for i in range(n)]
        for key in keys:
            assert run(cluster, client.insert(key, b"x" * 300)).ok
        for key in keys[:per_block]:
            assert run(cluster, client.delete(key)).ok

        def maint():
            yield from client.allocator.flush_frees()
            yield from client.allocator.reclaim()
            return (yield from client.allocator.release_empty_blocks())

        run(cluster, maint())
        # keep allocating after the release, then crash mid-operation
        more = [f"after-{i:04d}".encode() for i in range(10)]
        for key in more:
            assert run(cluster, client.insert(key, b"y" * 300)).ok
        client.arm_crash(CrashPoint.C1)
        with pytest.raises(ClientCrashed):
            run(cluster, client.update(more[0], b"z" * 300))

        def recover():
            return (yield from cluster.master.recover_client(client.cid))

        run(cluster, recover())
        reader = cluster.new_client()
        assert run(cluster, reader.search(more[0])).value == b"z" * 300
        for key in keys[per_block:] + more[1:]:
            assert run(cluster, reader.search(key)).ok, key
        # and the revived free lists must not hand out live objects
        _report, state = run(cluster, recover())
        live = set()
        from repro.core.wire import unpack_slot
        for key in keys[per_block:] + more:
            run(cluster, reader.search(key))
            entry = reader.cache.peek(key)
            if entry is not None:
                live.add(unpack_slot(entry.slot_word).pointer)
        for free in state.free_lists.values():
            assert not live & set(free)
