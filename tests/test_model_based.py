"""Model-based testing: FUSEE vs a reference dict under random op streams.

Hypothesis drives random sequences of insert/update/delete/search across
multiple clients against one cluster, checking every response against a
plain Python dict.  Sequential execution means the dict is an exact oracle.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core import FuseeCluster
from tests.conftest import small_config

KEYS = [f"mb-key-{i}".format(i).encode() for i in range(12)]
VALUES = [b"", b"a", b"x" * 17, b"y" * 100, b"z" * 300]


class FuseeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = FuseeCluster(small_config())
        self.clients = [self.cluster.new_client() for _ in range(3)]
        self.model = {}
        self.op_count = 0

    def run_op(self, generator):
        self.op_count += 1
        return self.cluster.run_op(generator)

    keys = st.sampled_from(KEYS)
    values = st.sampled_from(VALUES)
    clients = st.integers(min_value=0, max_value=2)

    @rule(key=keys, value=values, c=clients)
    def insert(self, key, value, c):
        result = self.run_op(self.clients[c].insert(key, value))
        if key in self.model:
            assert not result.ok and result.existed
        else:
            assert result.ok
            self.model[key] = value

    @rule(key=keys, value=values, c=clients)
    def update(self, key, value, c):
        result = self.run_op(self.clients[c].update(key, value))
        if key in self.model:
            assert result.ok
            self.model[key] = value
        else:
            assert not result.ok

    @rule(key=keys, c=clients)
    def delete(self, key, c):
        result = self.run_op(self.clients[c].delete(key))
        if key in self.model:
            assert result.ok
            del self.model[key]
        else:
            assert not result.ok

    @rule(key=keys, c=clients)
    def search(self, key, c):
        result = self.run_op(self.clients[c].search(key))
        if key in self.model:
            assert result.ok, f"missing {key!r}"
            assert result.value == self.model[key]
        else:
            assert not result.ok

    @rule(c=clients)
    def maintenance(self, c):
        self.run_op(self.clients[c].maintenance())

    @invariant()
    def replicas_agree_on_model_keys(self):
        # spot-check one key's slot replicas every few steps
        if self.op_count % 7 != 0 or not self.model:
            return
        key = next(iter(self.model))
        client = self.clients[0]
        result = self.cluster.run_op(client.search(key))
        assert result.ok
        entry = client.cache.peek(key)
        if entry is None:
            return
        words = {self.cluster.fabric.node(mn).read_word(addr)
                 for mn, addr in entry.slot_ref.locations()}
        assert len(words) == 1


FuseeMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])

TestFuseeModelBased = FuseeMachine.TestCase


@given(ops=st.lists(
    st.tuples(st.sampled_from(["insert", "update", "delete", "search"]),
              st.sampled_from(KEYS), st.sampled_from(VALUES)),
    min_size=1, max_size=60))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_single_client_random_sequence(ops):
    """A lighter-weight oracle test with one client."""
    cluster = FuseeCluster(small_config())
    client = cluster.new_client()
    model = {}
    for op, key, value in ops:
        if op == "insert":
            result = cluster.run_op(client.insert(key, value))
            assert result.ok == (key not in model)
            if result.ok:
                model[key] = value
        elif op == "update":
            result = cluster.run_op(client.update(key, value))
            assert result.ok == (key in model)
            if result.ok:
                model[key] = value
        elif op == "delete":
            result = cluster.run_op(client.delete(key))
            assert result.ok == (key in model)
            model.pop(key, None)
        else:
            result = cluster.run_op(client.search(key))
            assert result.ok == (key in model)
            if result.ok:
                assert result.value == model[key]
