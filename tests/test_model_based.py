"""Model-based testing: FUSEE vs reference semantics under random ops.

Two modes:

* **Sequential** — Hypothesis drives random op sequences across multiple
  clients against one cluster, checking every response against a plain
  Python dict.  Sequential execution means the dict is an exact oracle.
* **Concurrent** — three clients run their op programs *overlapping*
  (simultaneous processes under a randomly seeded controlled scheduler at
  zero simulated latency), and the resulting span history is validated
  with the true-concurrency KV linearizability checker
  (:func:`repro.core.linearizability.check_kv_linearizable`) — the dict
  oracle cannot judge overlapping executions, the checker can.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.check import ControlledScheduler, kv_ops_from_spans
from repro.check.history import LogicalClockTracer
from repro.check.scenarios import _small_cluster_config
from repro.core import FuseeCluster
from repro.core.linearizability import check_kv_linearizable
from repro.sim import Environment
from tests.conftest import small_config

KEYS = [f"mb-key-{i}".format(i).encode() for i in range(12)]
VALUES = [b"", b"a", b"x" * 17, b"y" * 100, b"z" * 300]


class FuseeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = FuseeCluster(small_config())
        self.clients = [self.cluster.new_client() for _ in range(3)]
        self.model = {}
        self.op_count = 0

    def run_op(self, generator):
        self.op_count += 1
        return self.cluster.run_op(generator)

    keys = st.sampled_from(KEYS)
    values = st.sampled_from(VALUES)
    clients = st.integers(min_value=0, max_value=2)

    @rule(key=keys, value=values, c=clients)
    def insert(self, key, value, c):
        result = self.run_op(self.clients[c].insert(key, value))
        if key in self.model:
            assert not result.ok and result.existed
        else:
            assert result.ok
            self.model[key] = value

    @rule(key=keys, value=values, c=clients)
    def update(self, key, value, c):
        result = self.run_op(self.clients[c].update(key, value))
        if key in self.model:
            assert result.ok
            self.model[key] = value
        else:
            assert not result.ok

    @rule(key=keys, c=clients)
    def delete(self, key, c):
        result = self.run_op(self.clients[c].delete(key))
        if key in self.model:
            assert result.ok
            del self.model[key]
        else:
            assert not result.ok

    @rule(key=keys, c=clients)
    def search(self, key, c):
        result = self.run_op(self.clients[c].search(key))
        if key in self.model:
            assert result.ok, f"missing {key!r}"
            assert result.value == self.model[key]
        else:
            assert not result.ok

    @rule(c=clients)
    def maintenance(self, c):
        self.run_op(self.clients[c].maintenance())

    @invariant()
    def replicas_agree_on_model_keys(self):
        # spot-check one key's slot replicas every few steps
        if self.op_count % 7 != 0 or not self.model:
            return
        key = next(iter(self.model))
        client = self.clients[0]
        result = self.cluster.run_op(client.search(key))
        assert result.ok
        entry = client.cache.peek(key)
        if entry is None:
            return
        words = {self.cluster.fabric.node(mn).read_word(addr)
                 for mn, addr in entry.slot_ref.locations()}
        assert len(words) == 1


FuseeMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])

TestFuseeModelBased = FuseeMachine.TestCase


# --------------------------------------------------------------------------
# Concurrent mode: overlapping clients + linearizability checker
# --------------------------------------------------------------------------

CONCURRENT_KEYS = [b"ck-0", b"ck-1", b"ck-2"]
CONCURRENT_VALUES = [b"v-a", b"v-bb", b"v-ccc"]

_program = st.lists(
    st.tuples(st.sampled_from(["insert", "update", "delete", "search"]),
              st.integers(min_value=0, max_value=len(CONCURRENT_KEYS) - 1),
              st.integers(min_value=0, max_value=len(CONCURRENT_VALUES) - 1)),
    min_size=1, max_size=4)


def _run_concurrent_programs(seed, programs, replication_mode):
    """Three clients with genuinely overlapping ops on contended keys.

    The world runs at zero latency so every protocol step of every client
    is co-runnable, and a seeded controlled scheduler picks a random
    serialization; invocation/completion order comes from its logical
    clock.  There is no dict oracle here — overlapping ops have no single
    authoritative order — so the span history is handed to the Wing &
    Gong checker, which searches for *some* legal linearization.
    """
    sched = ControlledScheduler(rng=random.Random(seed), max_steps=200_000)
    env = Environment()
    tracer = LogicalClockTracer(sched.logical_clock, env=env)
    cluster = FuseeCluster(_small_cluster_config(), env=env, tracer=tracer)
    clients = [cluster.new_client(replication_mode=replication_mode)
               for _ in range(3)]
    # A deterministic sequential prefix: one key present, allocators warm.
    cluster.run_op(clients[0].insert(CONCURRENT_KEYS[0], b"seed"))
    for c, warm_key in zip(clients[1:], (b"warm-1", b"warm-2")):
        cluster.run_op(c.insert(warm_key, b"x"))

    env.set_scheduler(sched)

    def run_program(client, program):
        for kind, ki, vi in program:
            key = CONCURRENT_KEYS[ki]
            value = CONCURRENT_VALUES[vi]
            if kind == "insert":
                yield from client.insert(key, value)
            elif kind == "update":
                yield from client.update(key, value)
            elif kind == "delete":
                yield from client.delete(key)
            else:
                yield from client.search(key)

    procs = [env.process(run_program(c, prog), name=f"client-{i}")
             for i, (c, prog) in enumerate(zip(clients, programs))]
    env.run(until=env.all_of(procs))

    violation = check_kv_linearizable(kv_ops_from_spans(tracer.spans))
    assert violation is None, f"history not linearizable: {violation}"


@pytest.mark.parametrize("mode", ["snapshot", "sequential", "swarm"])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       programs=st.tuples(_program, _program, _program))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_concurrent_clients_linearizable(mode, seed, programs):
    """Every registered replication strategy must keep overlapping
    multi-client histories linearizable — the cross-protocol safety
    property behind the replication shoot-out."""
    _run_concurrent_programs(seed, programs, mode)


_SEQ_PROGRAM = st.lists(
    st.tuples(st.sampled_from(["insert", "update", "delete", "search"]),
              st.sampled_from(KEYS), st.sampled_from(VALUES)),
    min_size=1, max_size=40)


@given(ops=_SEQ_PROGRAM)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_protocols_agree_on_sequential_programs(ops):
    """Cross-protocol equivalence: the same single-client op program
    yields identical observable results (ok / value / existed) and an
    identical final key-value state under every replication strategy —
    replication is an availability knob, never a semantics knob."""
    outcomes = {}
    for mode in ("snapshot", "sequential", "swarm"):
        cluster = FuseeCluster(small_config())
        client = cluster.new_client(replication_mode=mode)
        observed = []
        for op, key, value in ops:
            if op == "insert":
                result = cluster.run_op(client.insert(key, value))
            elif op == "update":
                result = cluster.run_op(client.update(key, value))
            elif op == "delete":
                result = cluster.run_op(client.delete(key))
            else:
                result = cluster.run_op(client.search(key))
            observed.append((result.ok, result.value, result.existed))
        final = {}
        for key in KEYS:
            result = cluster.run_op(client.search(key))
            if result.ok:
                final[key] = result.value
        outcomes[mode] = (observed, final)
    assert outcomes["snapshot"] == outcomes["sequential"] == \
        outcomes["swarm"]


@given(ops=st.lists(
    st.tuples(st.sampled_from(["insert", "update", "delete", "search"]),
              st.sampled_from(KEYS), st.sampled_from(VALUES)),
    min_size=1, max_size=60))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_single_client_random_sequence(ops):
    """A lighter-weight oracle test with one client."""
    cluster = FuseeCluster(small_config())
    client = cluster.new_client()
    model = {}
    for op, key, value in ops:
        if op == "insert":
            result = cluster.run_op(client.insert(key, value))
            assert result.ok == (key not in model)
            if result.ok:
                model[key] = value
        elif op == "update":
            result = cluster.run_op(client.update(key, value))
            assert result.ok == (key in model)
            if result.ok:
                model[key] = value
        elif op == "delete":
            result = cluster.run_op(client.delete(key))
            assert result.ok == (key in model)
            model.pop(key, None)
        else:
            result = cluster.run_op(client.search(key))
            assert result.ok == (key in model)
            if result.ok:
                assert result.value == model[key]
