"""Unit tests for the embedded operation log and the recovery log walker."""

import pytest

from repro.core import FuseeCluster
from repro.core.memory import AllocResult
from repro.core.oplog import (
    CrashCase,
    LogWalker,
    clear_used_ops,
    commit_old_value_ops,
    entry_for_alloc,
)
from repro.core.wire import (
    LOG_ENTRY_SIZE,
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    decode_log_entry,
)
from tests.conftest import small_config, run


@pytest.fixture
def cluster():
    return FuseeCluster(small_config())


@pytest.fixture
def client(cluster):
    return cluster.new_client()


def make_alloc(gaddr=0x1000, next_ptr=0x2000, prev_ptr=0x500, size=128):
    return AllocResult(gaddr=gaddr, class_idx=1, size=size,
                       next_ptr=next_ptr, prev_ptr=prev_ptr)


class TestEntryConstruction:
    def test_pointers_prepositioned(self):
        entry = entry_for_alloc(make_alloc(), OP_UPDATE)
        assert entry.next_ptr == 0x2000
        assert entry.prev_ptr == 0x500
        assert entry.used

    def test_old_value_starts_uncommitted(self):
        entry = entry_for_alloc(make_alloc(), OP_INSERT)
        assert not entry.old_value_committed

    @pytest.mark.parametrize("opcode", [OP_INSERT, OP_UPDATE, OP_DELETE])
    def test_opcode_recorded(self, opcode):
        assert entry_for_alloc(make_alloc(), opcode).opcode == opcode


class TestLogMutationOps:
    def alloc_and_write(self, cluster, client, key=b"k", value=b"v"):
        """Install one object through the normal insert path."""
        assert run(cluster, client.insert(key, value)).ok
        entry = client.cache.peek(key)
        from repro.core.wire import unpack_slot
        gaddr = unpack_slot(entry.slot_word).pointer
        region_id, offset = cluster.region_map.split(gaddr)
        layout = cluster.region_map.layout
        block = layout.block_index_of(offset)
        _r, _b, class_idx = next(
            b for b in client.allocator.owned_blocks()
            if b[0] == region_id and b[1] == block)
        return gaddr, client.allocator.size_classes[class_idx]

    def read_entry(self, cluster, gaddr, size, replica=0):
        mn, addr = cluster.region_map.translate(gaddr)[replica]
        data = bytes(cluster.fabric.node(mn).memory[
            addr + size - LOG_ENTRY_SIZE:addr + size])
        return decode_log_entry(data)

    def test_commit_targets_all_replicas(self, cluster, client):
        gaddr, size = self.alloc_and_write(cluster, client)
        ops = commit_old_value_ops(cluster.region_map, cluster.fabric,
                                   gaddr, size, old_value=0xBEEF)
        assert len(ops) == cluster.config.replication_factor

        def proc():
            yield cluster.fabric.post(ops)

        run(cluster, proc())
        for replica in range(cluster.config.replication_factor):
            entry = self.read_entry(cluster, gaddr, size, replica)
            assert entry.old_value == 0xBEEF
            assert entry.old_value_committed

    def test_commit_preserves_pointers_and_used(self, cluster, client):
        gaddr, size = self.alloc_and_write(cluster, client)
        before = self.read_entry(cluster, gaddr, size)

        def proc():
            yield cluster.fabric.post(commit_old_value_ops(
                cluster.region_map, cluster.fabric, gaddr, size, 7))

        run(cluster, proc())
        after = self.read_entry(cluster, gaddr, size)
        assert after.next_ptr == before.next_ptr
        assert after.prev_ptr == before.prev_ptr
        assert after.used == before.used

    def test_clear_used_resets_only_used_bit(self, cluster, client):
        gaddr, size = self.alloc_and_write(cluster, client)
        before = self.read_entry(cluster, gaddr, size)
        assert before.used

        def proc():
            yield cluster.fabric.post(clear_used_ops(
                cluster.region_map, cluster.fabric, gaddr, size, OP_UPDATE))

        run(cluster, proc())
        after = self.read_entry(cluster, gaddr, size)
        assert not after.used
        assert after.next_ptr == before.next_ptr
        assert after.opcode == OP_UPDATE

    def test_skips_crashed_replicas(self, cluster, client):
        gaddr, size = self.alloc_and_write(cluster, client)
        crashed_mn = cluster.region_map.translate(gaddr)[1][0]
        cluster.fabric.node(crashed_mn).crash()
        ops = commit_old_value_ops(cluster.region_map, cluster.fabric,
                                   gaddr, size, 1)
        assert len(ops) == cluster.config.replication_factor - 1
        assert all(op.mn_id != crashed_mn for op in ops)


class TestLogWalker:
    def build_chain(self, cluster, client, n):
        for i in range(n):
            assert run(cluster, client.insert(f"walk-{i}".encode(),
                                              b"x" * 40)).ok

    def walker(self, cluster, client):
        return LogWalker(cluster.fabric, cluster.region_map,
                         client.allocator.size_classes)

    def class_of(self, client):
        from repro.core.wire import kv_block_size
        return client.allocator.class_for(kv_block_size(7, 40))

    def test_walk_visits_allocation_order(self, cluster, client):
        self.build_chain(cluster, client, 10)
        class_idx = self.class_of(client)
        head = client.allocator.head(class_idx)

        def proc():
            return (yield from self.walker(cluster, client).walk_class(
                head, class_idx))

        visited, terminator = run(cluster, proc())
        assert len(visited) == 10
        keys = [obj.key for obj in visited]
        assert keys == [f"walk-{i}".encode() for i in range(10)]
        assert visited[-1].is_tail

    def test_walk_empty_head(self, cluster, client):
        def proc():
            return (yield from self.walker(cluster, client).walk_class(0, 0))

        visited, terminator = run(cluster, proc())
        assert visited == []
        assert terminator is None

    def test_walk_chain_links_consistent(self, cluster, client):
        self.build_chain(cluster, client, 6)
        class_idx = self.class_of(client)

        def proc():
            return (yield from self.walker(cluster, client).walk_class(
                client.allocator.head(class_idx), class_idx))

        visited, _t = run(cluster, proc())
        for prev, cur in zip(visited, visited[1:]):
            assert prev.entry.next_ptr == cur.gaddr
            assert cur.entry.prev_ptr == prev.gaddr

    def test_classify_tail_cases(self):
        from repro.core.oplog import WalkedObject
        from repro.core.wire import LogEntry, committed_old_value_bytes

        torn = WalkedObject(gaddr=1, class_idx=0, entry=None, key=None,
                            value=None, decode_error="torn")
        assert LogWalker.classify_tail(torn, None) \
            is CrashCase.C0_INCOMPLETE_OBJECT

        uncommitted = WalkedObject(
            gaddr=1, class_idx=0,
            entry=LogEntry(0, 0, 0, 0, OP_UPDATE, True),
            key=b"k", value=b"v", decode_error=None)
        assert LogWalker.classify_tail(uncommitted, 5) \
            is CrashCase.C1_UNCOMMITTED

        payload = committed_old_value_bytes(5)
        committed = WalkedObject(
            gaddr=1, class_idx=0,
            entry=LogEntry(0, 0, 5, payload[8], OP_UPDATE, True),
            key=b"k", value=b"v", decode_error=None)
        assert LogWalker.classify_tail(committed, 5) \
            is CrashCase.C2_BEFORE_PRIMARY
        assert LogWalker.classify_tail(committed, 99) \
            is CrashCase.C3_FINISHED
