"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
    kernel_mode,
)


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_start(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_run_until_time_advances_clock(self, env):
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_time_rejected(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_peek_empty_queue_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_peek_reports_next_event_time(self, env):
        env.timeout(3.0)
        assert env.peek() == 3.0


class TestTimeout:
    def test_timeout_fires_at_delay(self, env):
        fired = []

        def proc():
            yield env.timeout(4.5)
            fired.append(env.now)

        env.process(proc())
        env.run()
        assert fired == [4.5]

    def test_timeout_value_passthrough(self, env):
        got = []

        def proc():
            value = yield env.timeout(1.0, value="hello")
            got.append(value)

        env.process(proc())
        env.run()
        assert got == ["hello"]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_zero_delay_allowed(self, env):
        done = []

        def proc():
            yield env.timeout(0.0)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]

    def test_timeouts_fire_in_order(self, env):
        order = []

        def proc(delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(3.0, "c"))
        env.process(proc(1.0, "a"))
        env.process(proc(2.0, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_timeouts_fifo(self, env):
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ("first", "second", "third"):
            env.process(proc(tag))
        env.run()
        assert order == ["first", "second", "third"]


class TestEvent:
    def test_succeed_delivers_value(self, env):
        ev = env.event()
        got = []

        def waiter():
            got.append((yield ev))

        def trigger():
            yield env.timeout(2.0)
            ev.succeed(42)

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert got == [42]

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_value_before_trigger_rejected(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_fail_raises_in_waiter(self, env):
        ev = env.event()
        caught = []

        def waiter():
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        def trigger():
            yield env.timeout(1.0)
            ev.fail(ValueError("boom"))

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert caught == ["boom"]

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_yield_already_processed_event(self, env):
        """A process may wait on an event that fired in the past."""
        ev = env.event()
        ev.succeed("early")
        env.run(until=1.0)
        got = []

        def late_waiter():
            got.append((yield ev))

        env.process(late_waiter())
        env.run()
        assert got == ["early"]


class TestProcess:
    def test_return_value_becomes_event_value(self, env):
        def child():
            yield env.timeout(1.0)
            return "result"

        def parent():
            value = yield env.process(child())
            return value

        proc = env.process(parent())
        assert env.run(until=proc) == "result"

    def test_exception_propagates_to_parent(self, env):
        def child():
            yield env.timeout(1.0)
            raise RuntimeError("child failed")

        caught = []

        def parent():
            try:
                yield env.process(child())
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(parent())
        env.run()
        assert caught == ["child failed"]

    def test_unhandled_process_exception_surfaces_in_run(self, env):
        def bad():
            yield env.timeout(1.0)
            raise KeyError("oops")

        env.process(bad())
        with pytest.raises(KeyError):
            env.run()

    def test_is_alive(self, env):
        def child():
            yield env.timeout(5.0)

        proc = env.process(child())
        assert proc.is_alive
        env.run()
        assert not proc.is_alive

    def test_yield_non_event_rejected(self, env):
        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_nested_processes(self, env):
        def leaf(n):
            yield env.timeout(n)
            return n

        def mid():
            a = yield env.process(leaf(1))
            b = yield env.process(leaf(2))
            return a + b

        proc = env.process(mid())
        assert env.run(until=proc) == 3
        assert env.now == 3.0

    def test_run_until_event_before_queue_drain(self, env):
        def short():
            yield env.timeout(1.0)
            return "short"

        def long():
            yield env.timeout(100.0)

        env.process(long())
        proc = env.process(short())
        assert env.run(until=proc) == "short"
        assert env.now == pytest.approx(1.0)


class TestInterrupt:
    def test_interrupt_waiting_process(self, env):
        log = []

        def sleeper():
            try:
                yield env.timeout(100.0)
                log.append("slept")
            except Interrupt as intr:
                log.append(("interrupted", intr.cause, env.now))

        proc = env.process(sleeper())

        def interrupter():
            yield env.timeout(2.0)
            proc.interrupt("wake up")

        env.process(interrupter())
        env.run()
        assert log == [("interrupted", "wake up", 2.0)]

    def test_interrupt_finished_process_rejected(self, env):
        def quick():
            yield env.timeout(1.0)

        proc = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_interrupted_process_can_continue(self, env):
        log = []

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            log.append(env.now)

        proc = env.process(sleeper())

        def interrupter():
            yield env.timeout(5.0)
            proc.interrupt()

        env.process(interrupter())
        env.run()
        assert log == [6.0]


class TestConditions:
    def test_all_of_waits_for_slowest(self, env):
        def proc():
            values = yield env.all_of([
                env.timeout(1.0, value="a"),
                env.timeout(3.0, value="b"),
                env.timeout(2.0, value="c"),
            ])
            return (env.now, values)

        proc_ev = env.process(proc())
        now, values = env.run(until=proc_ev)
        assert now == 3.0
        assert values == ["a", "b", "c"]

    def test_any_of_fires_on_first(self, env):
        def proc():
            value = yield env.any_of([
                env.timeout(5.0, value="slow"),
                env.timeout(1.0, value="fast"),
            ])
            return (env.now, value)

        proc_ev = env.process(proc())
        now, value = env.run(until=proc_ev)
        assert now == 1.0
        assert value == "fast"

    def test_all_of_empty_fires_immediately(self, env):
        cond = env.all_of([])
        assert cond.triggered

    def test_all_of_with_processed_children(self, env):
        t1 = env.timeout(1.0, value=1)
        t2 = env.timeout(2.0, value=2)
        env.run(until=5.0)

        def proc():
            return (yield env.all_of([t1, t2]))

        proc_ev = env.process(proc())
        assert env.run(until=proc_ev) == [1, 2]


class TestAnyOfEmpty:
    """Regression: ``AnyOf([])`` must raise, never succeed with ``[]``.

    With no children the condition could never legitimately fire, so an
    empty waiter list is always a caller bug (a dynamically-built list
    that came out empty).  Call-site audit at the time of the fix: every
    dynamic waiter list in the tree (``fabric._replicate``, the check
    scenarios, the recovery traffic tests) goes through ``all_of``,
    which stays vacuously true — no caller constructs an ``AnyOf`` from
    a possibly-empty list.
    """

    def test_empty_any_of_raises(self, env):
        with pytest.raises(SimulationError):
            env.any_of([])

    def test_empty_any_of_class_raises(self, env):
        with pytest.raises(SimulationError):
            AnyOf(env, [])

    def test_empty_all_of_still_vacuously_true(self, env):
        assert env.all_of([]).triggered


# ======================================================================
# Kernel conformance: fast path vs retained reference path
# ======================================================================
#
# The fast drain loop (free-list pooling, packed heap keys, inlined
# stepping) must be observationally identical to the reference kernel.
# These properties execute random process graphs under both modes and
# require the full execution logs to match exactly.

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

# Delays drawn from a small grid with duplicates, so simultaneous
# events (the interesting ordering cases) are common.
_DELAYS = st.sampled_from([0.0, 0.0, 0.5, 1.0, 1.0, 2.0, 3.5])

_INSTR = st.one_of(
    st.tuples(st.just("sleep"), _DELAYS),
    st.tuples(st.just("signal"), st.integers(0, 3)),
    st.tuples(st.just("wait"), st.integers(0, 3)),
    st.tuples(st.just("interrupt"), st.integers(0, 4)),
    st.tuples(st.just("anyof"), st.integers(0, 3), st.integers(0, 3)),
    st.tuples(st.just("allof"), st.integers(0, 3), st.integers(0, 3)),
)

_PROGRAM = st.lists(st.lists(_INSTR, min_size=1, max_size=6),
                    min_size=1, max_size=5)


def _execute_program(mode, program):
    """Interpret ``program`` (one instruction list per process) under the
    given kernel mode; returns the full observable execution record."""
    with kernel_mode(mode):
        env = Environment()
        shared = [env.event() for _ in range(4)]
        log = []
        procs = []

        def runner(pid, instrs):
            for idx, instr in enumerate(instrs):
                op = instr[0]
                try:
                    if op == "sleep":
                        yield env.timeout(instr[1])
                    elif op == "signal":
                        ev = shared[instr[1]]
                        if not ev.triggered:
                            ev.succeed((pid, idx))
                    elif op == "wait":
                        value = yield shared[instr[1]]
                        log.append((pid, idx, env.now, "got", value))
                    elif op == "interrupt":
                        target = instr[1] % len(procs)
                        if target != pid and procs[target].is_alive:
                            try:
                                procs[target].interrupt((pid, idx))
                            except SimulationError:
                                # not yet started: rejected by the kernel
                                log.append((pid, idx, env.now, "rejected"))
                    elif op == "anyof":
                        value = yield env.any_of(
                            [shared[instr[1]], shared[instr[2]]])
                        log.append((pid, idx, env.now, "any", value))
                    elif op == "allof":
                        values = yield env.all_of(
                            [shared[instr[1]], shared[instr[2]]])
                        log.append((pid, idx, env.now, "all", values))
                except Interrupt as exc:
                    log.append((pid, idx, env.now, "interrupted",
                                exc.args))
                log.append((pid, idx, env.now, op))
            return ("finished", pid)

        for pid, instrs in enumerate(program):
            procs.append(env.process(runner(pid, instrs), name=f"p{pid}"))
        env.run()
        outcomes = [(p.triggered, p.value if p.triggered else None)
                    for p in procs]
        return tuple(log), tuple(outcomes), env.now


class TestKernelConformance:
    @given(program=_PROGRAM)
    @settings(max_examples=60, deadline=None)
    def test_random_process_graphs_match_reference(self, program):
        assert (_execute_program("fast", program)
                == _execute_program("reference", program))

    @given(delays=st.lists(_DELAYS, min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_ordering_is_time_then_insertion_stable(self, delays):
        """Timeout firings are (time, priority, insertion)-stable: equal
        deadlines resolve in creation order, under both kernels."""
        def order(mode):
            with kernel_mode(mode):
                env = Environment()
                fired = []
                timeouts = [env.timeout(d, value=i)
                            for i, d in enumerate(delays)]

                def watcher(i, ev):
                    yield ev
                    fired.append((i, env.now))

                for i, ev in enumerate(timeouts):
                    env.process(watcher(i, ev), name=f"w{i}")
                env.run()
                return fired

        expected = [(i, delays[i]) for i in
                    sorted(range(len(delays)), key=lambda i: (delays[i], i))]
        assert order("fast") == order("reference") == expected

    @given(d_sleep=_DELAYS, d_int=_DELAYS)
    @settings(max_examples=60, deadline=None)
    def test_interrupt_vs_finish_race_matches_reference(self, d_sleep,
                                                        d_int):
        """Whatever an interrupt racing the victim's own finish resolves
        to (including the d_int == d_sleep tie), both kernels agree."""
        def run_race(mode):
            with kernel_mode(mode):
                env = Environment()
                log = []

                def victim():
                    try:
                        yield env.timeout(d_sleep)
                        log.append(("done", env.now))
                    except Interrupt as exc:
                        log.append(("interrupted", env.now, exc.args))

                def attacker(victim_proc):
                    yield env.timeout(d_int)
                    if victim_proc.is_alive:
                        victim_proc.interrupt("bang")
                    log.append(("attacked", env.now))

                vp = env.process(victim(), name="victim")
                env.process(attacker(vp), name="attacker")
                env.run()
                return log

        assert run_race("fast") == run_race("reference")

    @given(pre_run=st.floats(min_value=0.0, max_value=4.0),
           child_delays=st.lists(_DELAYS, min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_conditions_with_pre_processed_children(self, pre_run,
                                                    child_delays):
        """AnyOf/AllOf built after some children already fired behave
        identically under both kernels."""
        def run_cond(mode):
            with kernel_mode(mode):
                env = Environment()
                children = [env.timeout(d, value=i)
                            for i, d in enumerate(child_delays)]
                if pre_run > 0.0:
                    env.run(until=pre_run)  # some children fire here
                log = []

                def wait_all():
                    values = yield env.all_of(children)
                    log.append(("all", env.now, values))

                def wait_any():
                    value = yield env.any_of(children)
                    log.append(("any", env.now, value))

                env.process(wait_any(), name="any")
                env.process(wait_all(), name="all")
                env.run()
                return log

        assert run_cond("fast") == run_cond("reference")

    @given(signal_first=st.booleans(), n_zeros=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_timeout_zero_vs_succeed_ordering(self, signal_first, n_zeros):
        """Timeout(0) wakeups and direct succeed() wakeups interleave the
        same way under both kernels (pure insertion order at t=0)."""
        def run_zero(mode):
            with kernel_mode(mode):
                env = Environment()
                ev = env.event()
                log = []

                def zero_sleeper(i):
                    yield env.timeout(0.0)
                    log.append(("t0", i, env.now))

                def ev_waiter():
                    value = yield ev
                    log.append(("ev", value, env.now))

                if signal_first:
                    ev.succeed("sig")
                for i in range(n_zeros):
                    env.process(zero_sleeper(i), name=f"z{i}")
                env.process(ev_waiter(), name="w")
                if not signal_first:
                    ev.succeed("sig")
                env.run()
                return log

        assert run_zero("fast") == run_zero("reference")
