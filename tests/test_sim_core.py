"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_start(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_run_until_time_advances_clock(self, env):
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_time_rejected(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_peek_empty_queue_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_peek_reports_next_event_time(self, env):
        env.timeout(3.0)
        assert env.peek() == 3.0


class TestTimeout:
    def test_timeout_fires_at_delay(self, env):
        fired = []

        def proc():
            yield env.timeout(4.5)
            fired.append(env.now)

        env.process(proc())
        env.run()
        assert fired == [4.5]

    def test_timeout_value_passthrough(self, env):
        got = []

        def proc():
            value = yield env.timeout(1.0, value="hello")
            got.append(value)

        env.process(proc())
        env.run()
        assert got == ["hello"]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_zero_delay_allowed(self, env):
        done = []

        def proc():
            yield env.timeout(0.0)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]

    def test_timeouts_fire_in_order(self, env):
        order = []

        def proc(delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(3.0, "c"))
        env.process(proc(1.0, "a"))
        env.process(proc(2.0, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_timeouts_fifo(self, env):
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ("first", "second", "third"):
            env.process(proc(tag))
        env.run()
        assert order == ["first", "second", "third"]


class TestEvent:
    def test_succeed_delivers_value(self, env):
        ev = env.event()
        got = []

        def waiter():
            got.append((yield ev))

        def trigger():
            yield env.timeout(2.0)
            ev.succeed(42)

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert got == [42]

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_value_before_trigger_rejected(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_fail_raises_in_waiter(self, env):
        ev = env.event()
        caught = []

        def waiter():
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        def trigger():
            yield env.timeout(1.0)
            ev.fail(ValueError("boom"))

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert caught == ["boom"]

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_yield_already_processed_event(self, env):
        """A process may wait on an event that fired in the past."""
        ev = env.event()
        ev.succeed("early")
        env.run(until=1.0)
        got = []

        def late_waiter():
            got.append((yield ev))

        env.process(late_waiter())
        env.run()
        assert got == ["early"]


class TestProcess:
    def test_return_value_becomes_event_value(self, env):
        def child():
            yield env.timeout(1.0)
            return "result"

        def parent():
            value = yield env.process(child())
            return value

        proc = env.process(parent())
        assert env.run(until=proc) == "result"

    def test_exception_propagates_to_parent(self, env):
        def child():
            yield env.timeout(1.0)
            raise RuntimeError("child failed")

        caught = []

        def parent():
            try:
                yield env.process(child())
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(parent())
        env.run()
        assert caught == ["child failed"]

    def test_unhandled_process_exception_surfaces_in_run(self, env):
        def bad():
            yield env.timeout(1.0)
            raise KeyError("oops")

        env.process(bad())
        with pytest.raises(KeyError):
            env.run()

    def test_is_alive(self, env):
        def child():
            yield env.timeout(5.0)

        proc = env.process(child())
        assert proc.is_alive
        env.run()
        assert not proc.is_alive

    def test_yield_non_event_rejected(self, env):
        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_nested_processes(self, env):
        def leaf(n):
            yield env.timeout(n)
            return n

        def mid():
            a = yield env.process(leaf(1))
            b = yield env.process(leaf(2))
            return a + b

        proc = env.process(mid())
        assert env.run(until=proc) == 3
        assert env.now == 3.0

    def test_run_until_event_before_queue_drain(self, env):
        def short():
            yield env.timeout(1.0)
            return "short"

        def long():
            yield env.timeout(100.0)

        env.process(long())
        proc = env.process(short())
        assert env.run(until=proc) == "short"
        assert env.now == pytest.approx(1.0)


class TestInterrupt:
    def test_interrupt_waiting_process(self, env):
        log = []

        def sleeper():
            try:
                yield env.timeout(100.0)
                log.append("slept")
            except Interrupt as intr:
                log.append(("interrupted", intr.cause, env.now))

        proc = env.process(sleeper())

        def interrupter():
            yield env.timeout(2.0)
            proc.interrupt("wake up")

        env.process(interrupter())
        env.run()
        assert log == [("interrupted", "wake up", 2.0)]

    def test_interrupt_finished_process_rejected(self, env):
        def quick():
            yield env.timeout(1.0)

        proc = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_interrupted_process_can_continue(self, env):
        log = []

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            log.append(env.now)

        proc = env.process(sleeper())

        def interrupter():
            yield env.timeout(5.0)
            proc.interrupt()

        env.process(interrupter())
        env.run()
        assert log == [6.0]


class TestConditions:
    def test_all_of_waits_for_slowest(self, env):
        def proc():
            values = yield env.all_of([
                env.timeout(1.0, value="a"),
                env.timeout(3.0, value="b"),
                env.timeout(2.0, value="c"),
            ])
            return (env.now, values)

        proc_ev = env.process(proc())
        now, values = env.run(until=proc_ev)
        assert now == 3.0
        assert values == ["a", "b", "c"]

    def test_any_of_fires_on_first(self, env):
        def proc():
            value = yield env.any_of([
                env.timeout(5.0, value="slow"),
                env.timeout(1.0, value="fast"),
            ])
            return (env.now, value)

        proc_ev = env.process(proc())
        now, value = env.run(until=proc_ev)
        assert now == 1.0
        assert value == "fast"

    def test_all_of_empty_fires_immediately(self, env):
        cond = env.all_of([])
        assert cond.triggered

    def test_all_of_with_processed_children(self, env):
        t1 = env.timeout(1.0, value=1)
        t2 = env.timeout(2.0, value=2)
        env.run(until=5.0)

        def proc():
            return (yield env.all_of([t1, t2]))

        proc_ev = env.process(proc())
        assert env.run(until=proc_ev) == [1, 2]
