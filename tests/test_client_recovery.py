"""Crashed-client recovery (§5.3): log traversal, index repair, memory
re-management, and the Table 1 breakdown."""

import pytest

from repro.core import FuseeCluster
from repro.core.client import ClientCrashed, CrashPoint
from repro.core.oplog import CrashCase
from tests.conftest import small_config, run


@pytest.fixture
def cluster():
    return FuseeCluster(small_config())


def crash_during_update(cluster, point, key=b"k", new=b"new-value"):
    client = cluster.new_client()
    assert run(cluster, client.insert(key, b"old-value")).ok
    client.arm_crash(point)
    with pytest.raises(ClientCrashed):
        run(cluster, client.update(key, new))
    return client


def recover(cluster, client):
    def proc():
        return (yield from cluster.master.recover_client(client.cid))
    return run(cluster, proc())


class TestIndexRepair:
    def test_c0_torn_object_reclaimed(self, cluster):
        client = crash_during_update(cluster, CrashPoint.C0)
        report, state = recover(cluster, client)
        assert report.crash_cases.get("c0") == 1
        assert report.objects_reclaimed >= 1
        reader = cluster.new_client()
        assert run(cluster, reader.search(b"k")).value == b"old-value"

    def test_c1_uncommitted_update_redone(self, cluster):
        client = crash_during_update(cluster, CrashPoint.C1)
        report, _ = recover(cluster, client)
        assert report.crash_cases.get("c1") == 1
        assert report.requests_redone >= 1
        reader = cluster.new_client()
        assert run(cluster, reader.search(b"k")).value == b"new-value"

    def test_c1_repairs_backup_inconsistency(self, cluster):
        """After a c1 crash backups differ from the primary; recovery must
        leave every replica of the slot identical."""
        client = crash_during_update(cluster, CrashPoint.C1)
        recover(cluster, client)
        reader = cluster.new_client()
        meta = cluster.race.key_meta(b"k")
        run(cluster, reader.search(b"k"))
        entry = reader.cache.peek(b"k")
        values = {cluster.fabric.node(mn).read_word(addr)
                  for mn, addr in entry.slot_ref.locations()}
        assert len(values) == 1

    def test_c2_committed_update_finished(self, cluster):
        client = crash_during_update(cluster, CrashPoint.C2)
        report, _ = recover(cluster, client)
        assert report.crash_cases.get("c2") == 1
        reader = cluster.new_client()
        assert run(cluster, reader.search(b"k")).value == b"new-value"

    def test_c3_finished_request_untouched(self, cluster):
        client = crash_during_update(cluster, CrashPoint.C3)
        report, _ = recover(cluster, client)
        assert report.crash_cases.get("c3") == 1
        assert report.requests_redone == 0
        reader = cluster.new_client()
        assert run(cluster, reader.search(b"k")).value == b"new-value"

    def test_c3_recovers_batched_free(self, cluster):
        """§5.3: the master asynchronously frees the old object of a
        finished request (the crashed client never flushed its frees)."""
        client = crash_during_update(cluster, CrashPoint.C3)
        # Find the old object's free bit before recovery.
        layout = cluster.region_map.layout
        recover(cluster, client)
        # The freed bit of *some* object in the crashed client's blocks
        # must now be set (the old KV block).
        found_set_bit = False
        for region_id, block, _cls in client.allocator.owned_blocks():
            mn, base = cluster.region_map.placement(region_id)[0]
            off = layout.bitmap_offset_of(block)
            bm = cluster.fabric.node(mn).memory[
                base + off:base + off + layout.bitmap_bytes_per_block]
            if any(bm):
                found_set_bit = True
        assert found_set_bit

    def test_crashed_insert_c1_redone(self, cluster):
        client = cluster.new_client()
        run(cluster, client.insert(b"warm", b"x"))  # publish heads
        client.arm_crash(CrashPoint.C1)
        with pytest.raises(ClientCrashed):
            run(cluster, client.insert(b"fresh-key", b"fresh-value"))
        recover(cluster, client)
        reader = cluster.new_client()
        assert run(cluster, reader.search(b"fresh-key")).value \
            == b"fresh-value"

    def test_crashed_delete_c1_redone(self, cluster):
        client = cluster.new_client()
        run(cluster, client.insert(b"victim", b"v"))
        client.arm_crash(CrashPoint.C1)
        with pytest.raises(ClientCrashed):
            run(cluster, client.delete(b"victim"))
        recover(cluster, client)
        reader = cluster.new_client()
        assert not run(cluster, reader.search(b"victim")).ok

    def test_crashed_delete_c2_finished(self, cluster):
        client = cluster.new_client()
        run(cluster, client.insert(b"victim", b"v"))
        client.arm_crash(CrashPoint.C2)
        with pytest.raises(ClientCrashed):
            run(cluster, client.delete(b"victim"))
        recover(cluster, client)
        reader = cluster.new_client()
        assert not run(cluster, reader.search(b"victim")).ok

    def test_recovery_idempotent(self, cluster):
        """Recovering twice must not redo the request twice (§5.4: the
        commit marker written during the first recovery protects it)."""
        client = crash_during_update(cluster, CrashPoint.C1)
        recover(cluster, client)
        reader = cluster.new_client()
        assert run(cluster, reader.search(b"k")).value == b"new-value"
        # Another client moves the key forward...
        run(cluster, reader.update(b"k", b"even-newer"))
        # ...and a second recovery pass must not resurrect new-value.
        recover(cluster, client)
        assert run(cluster, reader.search(b"k")).value == b"even-newer"

    def test_recovery_with_concurrent_traffic(self, cluster):
        """Live clients keep operating while the master recovers."""
        client = crash_during_update(cluster, CrashPoint.C1)
        live = cluster.new_client()
        env = cluster.env
        done = []

        def traffic():
            for i in range(30):
                result = yield from live.insert(f"live-{i}".encode(), b"v")
                assert result.ok
            done.append(True)

        def recovery():
            yield from cluster.master.recover_client(client.cid)
            done.append(True)

        env.run(until=env.all_of([env.process(traffic()),
                                  env.process(recovery())]))
        assert len(done) == 2
        reader = cluster.new_client()
        for i in range(30):
            assert run(cluster, reader.search(f"live-{i}".encode())).ok


class TestMemoryRemanagement:
    def test_blocks_found(self, cluster):
        client = crash_during_update(cluster, CrashPoint.C1)
        report, state = recover(cluster, client)
        assert report.blocks_recovered == len(state.blocks)
        assert report.blocks_recovered >= 1

    def test_free_lists_exclude_live_objects(self, cluster):
        client = cluster.new_client()
        keys = [f"key-{i}".encode() for i in range(10)]
        for key in keys:
            run(cluster, client.insert(key, b"v"))
        client.arm_crash(CrashPoint.C0)
        with pytest.raises(ClientCrashed):
            run(cluster, client.insert(b"last", b"v"))
        report, state = recover(cluster, client)
        # the 10 inserted objects must NOT be in the recovered free lists
        reader = cluster.new_client()
        live_gaddrs = set()
        from repro.core.wire import unpack_slot
        for key in keys:
            run(cluster, reader.search(key))
            entry = reader.cache.peek(key)
            live_gaddrs.add(unpack_slot(entry.slot_word).pointer)
        for free in state.free_lists.values():
            assert not live_gaddrs & set(free)

    def test_revived_client_operates(self, cluster):
        client = crash_during_update(cluster, CrashPoint.C1)
        _report, state = recover(cluster, client)
        revived = cluster.revive_client(client, state)
        for i in range(20):
            assert run(cluster, revived.insert(f"post-{i}".encode(),
                                               b"v")).ok
        for i in range(20):
            assert run(cluster, revived.search(f"post-{i}".encode())).ok
        assert run(cluster, revived.update(b"k", b"after-revival")).ok
        assert run(cluster, revived.search(b"k")).value == b"after-revival"

    def test_revived_client_does_not_corrupt_live_data(self, cluster):
        client = cluster.new_client()
        keys = [f"key-{i}".encode() for i in range(15)]
        for key in keys:
            run(cluster, client.insert(key, b"precious"))
        client.arm_crash(CrashPoint.C1)
        with pytest.raises(ClientCrashed):
            run(cluster, client.update(keys[0], b"crashed-update"))
        _report, state = recover(cluster, client)
        revived = cluster.revive_client(client, state)
        # Burn through recovered free lists: must never hand out an object
        # still referenced by the index.
        for i in range(60):
            run(cluster, revived.insert(f"burn-{i}".encode(), b"x" * 30))
        reader = cluster.new_client()
        assert run(cluster, reader.search(keys[0])).value == b"crashed-update"
        for key in keys[1:]:
            assert run(cluster, reader.search(key)).value == b"precious"


class TestRecoveryReport:
    def test_connection_dominates(self, cluster):
        """Table 1: connection/MR re-establishment is ~92% of recovery."""
        client = cluster.new_client()
        run(cluster, client.insert(b"k", b"v"))
        for i in range(100):
            run(cluster, client.update(b"k", f"v{i}".encode()))
        client.arm_crash(CrashPoint.C1)
        with pytest.raises(ClientCrashed):
            run(cluster, client.update(b"k", b"crash"))
        report, _ = recover(cluster, client)
        assert report.connect_mr_us / report.total_us > 0.80
        assert report.traverse_log_us > 0
        assert report.get_metadata_us > 0
        assert report.construct_free_list_us > 0

    def test_traversal_scales_with_log_length(self, cluster):
        times = []
        for n_updates in (20, 120):
            client = cluster.new_client()
            run(cluster, client.insert(f"key-{n_updates}".encode(), b"v"))
            for i in range(n_updates):
                run(cluster, client.update(f"key-{n_updates}".encode(),
                                           f"v{i}".encode()))
            client.arm_crash(CrashPoint.C1)
            with pytest.raises(ClientCrashed):
                run(cluster, client.update(f"key-{n_updates}".encode(),
                                           b"x"))
            report, _ = recover(cluster, client)
            times.append((report.objects_visited, report.traverse_log_us))
        (n1, t1), (n2, t2) = times
        assert n2 > n1
        assert t2 > t1

    def test_rows_format(self, cluster):
        client = crash_during_update(cluster, CrashPoint.C1)
        report, _ = recover(cluster, client)
        rows = report.rows()
        assert rows[-1][0] == "Total"
        assert rows[-1][2] == 100.0
        assert abs(sum(pct for _n, _ms, pct in rows[:-1]) - 100.0) < 0.1

    def test_objects_visited_counts_log_chain(self, cluster):
        client = cluster.new_client()
        run(cluster, client.insert(b"k", b"v"))
        for i in range(25):
            run(cluster, client.update(b"k", f"v{i}".encode()))
        client.arm_crash(CrashPoint.C1)
        with pytest.raises(ClientCrashed):
            run(cluster, client.update(b"k", b"x"))
        report, _ = recover(cluster, client)
        # 1 insert + 25 updates + 1 crashed update = 27 allocations
        assert report.objects_visited >= 27


class TestRecoverySpans:
    """The Table-1 phases are tagged with nested tracer spans, so
    ``repro profile`` can break down the recovery budget."""

    def test_recovery_phases_emit_nested_tracer_spans(self):
        from repro.obs import Tracer
        tracer = Tracer()
        cluster = FuseeCluster(small_config(), tracer=tracer)
        client = crash_during_update(cluster, CrashPoint.C1)
        report, _state = recover(cluster, client)
        by_op = {span.op: span for span in tracer.spans}
        parent = by_op["recover.client"]
        scan = by_op["recover.metadata_scan"]
        replay = by_op["recover.log_replay"]
        # Children nest inside the parent recovery span, in phase order.
        assert parent.start_us <= scan.start_us <= scan.end_us \
            <= parent.end_us
        assert parent.start_us <= replay.start_us <= replay.end_us \
            <= parent.end_us
        assert scan.end_us <= replay.start_us
        # Fabric batches issued inside a phase land in that child span.
        assert scan.rtts >= 1      # list-head READ
        assert replay.rtts >= 1    # log-walk READs
        # The replay span covers exactly the Table-1 traversal budget.
        assert replay.end_us - replay.start_us == pytest.approx(
            report.traverse_log_us)

    def test_untraced_recovery_emits_no_spans(self):
        cluster = FuseeCluster(small_config())
        client = crash_during_update(cluster, CrashPoint.C1)
        report, _state = recover(cluster, client)
        assert report.traverse_log_us >= 0.0  # ran fine without a tracer
