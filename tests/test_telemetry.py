"""The online telemetry plane: sketches, windows, SLOs, gray detection.

Four layers, tested bottom-up:

* the streaming sketches (``DDSketch``, ``SpaceSaving``) against their
  published guarantees, with Hypothesis driving the value streams;
* the windowed views (``WindowStore``, ``windowed_metrics``) — pane
  edges as a pure function of simulated time, exact sliding merges,
  bounded memory;
* the SLO burn-rate evaluator and the comparative gray-failure
  detector as units, on synthetic streams with known answers;
* the assembled :class:`~repro.obs.Monitor` on live beds — hot-key
  tracking, health artifacts, zero false positives on clean beds at
  both microbench and scale-test size, and every seeded gray/port
  fault caught within three windows of onset.
"""

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DDSketch,
    GrayDetector,
    KV_OPS,
    Monitor,
    MonitorConfig,
    SloSpec,
    SloState,
    SpaceSaving,
    Tracer,
    WindowStore,
    detector_verdict,
    health_fingerprint,
    load_health,
    render_health,
    windowed_metrics,
    write_health,
)
from repro.obs.metrics import Histogram, TimeSeries
from repro.obs.slo import ERR_STREAM, OK_STREAM


class _FakeEnv:
    """Just enough of an Environment for the window layer: ``now``."""

    def __init__(self, now: float = 0.0):
        self.now = now


# ---------------------------------------------------------------------------
# DDSketch
# ---------------------------------------------------------------------------
values_strategy = st.lists(
    st.floats(min_value=1e-3, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=300)


def _exact_quantile(values, q):
    # the sketch's rank convention: 0-based, floor(q * (count - 1))
    ordered = sorted(values)
    return ordered[math.floor(q * (len(ordered) - 1))]


class TestDDSketch:
    @given(values=values_strategy,
           q=st.sampled_from([0.0, 0.25, 0.5, 0.9, 0.99, 1.0]))
    @settings(max_examples=200, deadline=None)
    def test_quantile_within_relative_error(self, values, q):
        alpha = 0.01
        sketch = DDSketch(alpha=alpha)
        for v in values:
            sketch.add(v)
        exact = _exact_quantile(values, q)
        # the documented bound, plus float slack for values that land
        # exactly on a bucket boundary
        assert abs(sketch.quantile(q) - exact) <= exact * (alpha + 1e-9)

    @given(chunks=st.lists(values_strategy, min_size=3, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_merge_is_exact_and_associative(self, chunks):
        def sketch_of(vals):
            s = DDSketch()
            for v in vals:
                s.add(v)
            return s

        a, b, c = (sketch_of(chunk) for chunk in chunks)
        left = sketch_of(chunks[0]).merge(b).merge(c)
        right = sketch_of(chunks[1]).merge(c)
        right = sketch_of(chunks[0]).merge(right)
        direct = sketch_of([v for chunk in chunks for v in chunk])

        def state(sketch):
            # bucket contents are exact integers; only the running float
            # `total` is sensitive to addition order
            data = sketch.to_dict()
            return {k: v for k, v in data.items() if k != "total"}

        # merging is exact bucket addition: all three states identical
        assert state(left) == state(right) == state(direct)
        assert left.total == pytest.approx(direct.total)
        assert right.total == pytest.approx(direct.total)

    def test_merge_rejects_mismatched_alpha(self):
        with pytest.raises(ValueError):
            DDSketch(alpha=0.01).merge(DDSketch(alpha=0.02))

    def test_zero_bucket_collapses_tiny_values(self):
        sketch = DDSketch()
        for _ in range(10):
            sketch.add(0.0)
        sketch.add(5.0)
        assert sketch.zero_count == 10
        assert sketch.count == 11
        assert sketch.quantile(0.5) == 0.0
        assert abs(sketch.quantile(1.0) - 5.0) <= 5.0 * 0.01

    @given(values=values_strategy,
           threshold=st.floats(min_value=1e-3, max_value=1e6))
    @settings(max_examples=100, deadline=None)
    def test_count_above_errs_low_by_at_most_one_bucket(self, values,
                                                        threshold):
        sketch = DDSketch()
        for v in values:
            sketch.add(v)
        true_above = sum(1 for v in values if v > threshold)
        approx = sketch.count_above(threshold)
        assert approx <= true_above
        # the under-count is confined to the threshold's own value band
        band = 2 * sketch.alpha / (1 - sketch.alpha) * threshold
        missable = sum(1 for v in values
                       if threshold < v <= threshold + 2 * band)
        assert true_above - approx <= missable

    def test_round_trip_through_dict(self):
        sketch = DDSketch()
        for v in (0.0, 0.5, 1.0, 3.7, 3.7, 120.0):
            sketch.add(v)
        clone = DDSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict())))
        assert clone.to_dict() == sketch.to_dict()
        assert clone.quantile(0.5) == sketch.quantile(0.5)

    def test_empty_sketch_answers_zero(self):
        sketch = DDSketch()
        assert sketch.quantile(0.99) == 0.0
        assert sketch.mean == 0.0
        assert sketch.count_above(1.0) == 0


# ---------------------------------------------------------------------------
# SpaceSaving
# ---------------------------------------------------------------------------
class TestSpaceSaving:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=50, deadline=None)
    def test_estimate_bounds_hold(self, seed):
        rng = random.Random(seed)
        # Zipf-flavoured stream over 50 keys, capacity 8
        stream = [min(int(rng.paretovariate(1.2)), 50) for _ in range(500)]
        truth = {}
        sketch = SpaceSaving(capacity=8)
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
            sketch.offer(key)
        assert sketch.n == len(stream)
        for key, count, error in sketch.top():
            assert count >= truth.get(key, 0)          # never under-counts
            assert count - error <= truth.get(key, 0)  # bounded over-count
        # every key heavier than n/capacity is tracked
        floor = sketch.n / sketch.capacity
        tracked = {key for key, _c, _e in sketch.top()}
        for key, true_count in truth.items():
            if true_count > floor:
                assert key in tracked

    def test_exact_when_under_capacity(self):
        sketch = SpaceSaving(capacity=8)
        for key, n in (("a", 5), ("b", 3), ("c", 1)):
            sketch.offer(key, n)
        assert sketch.top() == [("a", 5, 0), ("b", 3, 0), ("c", 1, 0)]
        assert sketch.estimate("b") == (3, 0)
        assert sketch.estimate("missing") == (0, 0)

    def test_deterministic_over_identical_streams(self):
        def run():
            sketch = SpaceSaving(capacity=4)
            for key in [1, 2, 3, 4, 5, 1, 2, 6, 7, 1, 8, 2, 9]:
                sketch.offer(key)
            return sketch.to_dict(key_repr=str)

        assert run() == run()

    def test_heavy_hitters_use_guaranteed_counts(self):
        sketch = SpaceSaving(capacity=4)
        for _ in range(60):
            sketch.offer("hot")
        for key in range(30):
            sketch.offer(f"cold{key}")
        hitters = [key for key, _c, _e in sketch.heavy_hitters(0.25)]
        assert hitters == ["hot"]


# ---------------------------------------------------------------------------
# WindowStore + windowed metrics proxies
# ---------------------------------------------------------------------------
class TestWindowStore:
    def test_pane_edges_are_pure_functions_of_time(self):
        env = _FakeEnv()
        store = WindowStore(env, width_us=250.0)
        for t, expected_pane in ((0.0, 0), (249.999, 0), (250.0, 1),
                                 (500.0, 2), (1249.0, 4)):
            env.now = t
            store.inc("ops")
            assert store.pane_of(t) == expected_pane
        assert store.panes() == [0, 1, 2, 4]
        assert store.count("ops", 0) == 2
        assert store.count("ops", 4, k=5) == 5     # sliding over all panes
        assert store.rate("ops", 0) == 2 / 250.0

    def test_sliding_sketch_merge_equals_direct(self):
        env = _FakeEnv()
        store = WindowStore(env, width_us=100.0)
        values = [(10.0, 1.0), (50.0, 2.0), (150.0, 8.0), (250.0, 4.0)]
        for t, v in values:
            env.now = t
            store.observe("lat", v)
        direct = DDSketch(store.alpha)
        for _t, v in values:
            direct.add(v)
        merged = store.sketch("lat", pane=2, k=3)
        assert merged.to_dict() == direct.to_dict()
        # tumbling pane view is just that pane
        assert store.sketch("lat", pane=1).count == 1

    def test_prune_drops_old_panes_only(self):
        env = _FakeEnv()
        store = WindowStore(env, width_us=100.0)
        for t in (10.0, 110.0, 210.0):
            env.now = t
            store.inc("ops")
            store.observe("lat", t)
            store.set_gauge("g", t)
        store.prune(before_pane=2)
        assert store.panes() == [2]
        assert store.count("ops", 2) == 1
        assert store.count("ops", 1) == 0

    def test_pane_summary_is_sorted_and_json_safe(self):
        env = _FakeEnv(now=120.0)
        store = WindowStore(env, width_us=100.0)
        store.inc("b.ops")
        store.inc("a.ops", 3)
        store.observe("lat", 5.0)
        summary = store.pane_summary(1)
        assert list(summary["counters"]) == ["a.ops", "b.ops"]
        assert summary["t0"] == 100.0 and summary["t1"] == 200.0
        assert summary["quantiles"]["lat"]["count"] == 1
        json.dumps(summary)   # JSONL-safe

    def test_windowed_metrics_feed_base_and_store(self):
        env = _FakeEnv(now=30.0)
        store = WindowStore(env, width_us=100.0)
        metrics = windowed_metrics(store)
        metrics.counter("ops.search").inc()
        metrics.counter("ops.search").inc(2)
        metrics.histogram("latency_us.search").observe(4.0)
        metrics.gauge("depth").set(7.0)
        metrics.timeseries("util").record(30.0, 0.5)
        # base instruments behave exactly like plain Metrics
        assert metrics.counter("ops.search").value == 3
        assert metrics.histogram("latency_us.search").count == 1
        assert metrics.snapshot()["gauges"]["depth"] == 7.0
        # ... and the same observations landed in pane 0
        assert store.count("ops.search", 0) == 3
        assert store.sketch("latency_us.search", 0).count == 1
        assert store.gauge("depth", 0) == 7.0
        assert store.sketch("util", 0).count == 1


# ---------------------------------------------------------------------------
# Satellites: TimeSeries cap, Histogram edge cases
# ---------------------------------------------------------------------------
class TestTimeSeriesCap:
    def test_default_is_unbounded_and_byte_identical(self):
        plain = TimeSeries()
        for i in range(1000):
            plain.record(float(i), float(i) * 0.5)
        assert plain.points == [(float(i), float(i) * 0.5)
                                for i in range(1000)]

    @given(n=st.integers(min_value=0, max_value=3000),
           cap=st.sampled_from([2, 8, 64]))
    @settings(max_examples=40, deadline=None)
    def test_capped_series_stays_bounded_and_uniform(self, n, cap):
        series = TimeSeries(max_points=cap)
        for i in range(n):
            series.record(float(i), float(i))
        assert len(series.points) <= cap
        if n >= cap:
            assert len(series.points) >= cap // 2
        # retained samples are exactly the multiples of one stride
        times = [t for t, _v in series.points]
        if len(times) >= 2:
            stride = times[1] - times[0]
            assert times == [i * stride for i in range(len(times))]

    def test_capped_series_still_summarises(self):
        series = TimeSeries(max_points=8)
        for i in range(100):
            series.record(float(i), 1.0)
        assert series.mean() == 1.0
        assert series.peak() == 1.0
        assert series.summary()["samples"] == len(series.points)

    def test_cap_below_two_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(max_points=1)


class TestHistogramEdgeCases:
    """Pins the documented empty/single-observation contract."""

    def test_empty_histogram_returns_sentinel_zero(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        for p in (0.0, 0.1, 50.0, 99.9, 100.0):
            assert hist.percentile(p) == 0.0

    def test_single_observation_is_every_percentile(self):
        hist = Histogram()
        hist.observe(7.3)
        assert hist.mean == 7.3
        for p in (0.1, 50.0, 99.0, 99.9, 100.0):
            assert hist.percentile(p) == 7.3

    def test_zero_value_observation_distinguishable_by_count(self):
        hist = Histogram()
        hist.observe(0.0)
        # same sentinel value as empty, but count differs
        assert hist.percentile(99.0) == 0.0
        assert hist.count == 1


# ---------------------------------------------------------------------------
# SLO specs and burn-rate evaluation
# ---------------------------------------------------------------------------
class TestSloSpec:
    def test_parse_latency(self):
        spec = SloSpec.parse("latency:search:p99:8.5")
        assert spec.kind == "latency" and spec.op == "search"
        assert spec.percentile == 99.0 and spec.threshold_us == 8.5
        assert abs(spec.budget - 0.01) < 1e-12

    def test_parse_errors_and_availability(self):
        assert SloSpec.parse("errors:0.01").budget == 0.01
        avail = SloSpec.parse("availability:0.999")
        assert abs(avail.budget - 0.001) < 1e-12

    @pytest.mark.parametrize("bad", [
        "latency:search:99:8",        # missing the p
        "latency:frobnicate:p99:8",   # unknown op
        "latency:search:p0:8",        # percentile out of range
        "errors:1.5",
        "availability:0",
        "nonsense:1",
        "latency:search",             # truncated
    ])
    def test_parse_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            SloSpec.parse(bad)


class TestSloBurnRate:
    def _store_with_errors(self, per_pane_err, per_pane_ok,
                           width_us=100.0):
        env = _FakeEnv()
        store = WindowStore(env, width_us=width_us)
        for pane, (err, ok) in enumerate(zip(per_pane_err, per_pane_ok)):
            env.now = pane * width_us + 1.0
            if ok:
                store.inc(OK_STREAM, ok)
            if err:
                store.inc(ERR_STREAM, err)
        return store

    def test_sustained_burn_trips_both_windows(self):
        # 10% errors against a 1% budget: burn 10x in fast AND slow
        store = self._store_with_errors([10] * 6, [90] * 6)
        state = SloState(SloSpec.parse("errors:0.01"), fast_panes=1,
                         slow_panes=6, burn_threshold=2.0, min_volume=20)
        alert = state.evaluate(store, pane=5)
        assert alert is not None
        assert alert.burn_fast == pytest.approx(10.0)
        assert alert.burn_slow == pytest.approx(10.0)
        assert state.windows_tripped == 1

    def test_single_pane_blip_is_suppressed_by_slow_window(self):
        # one bad pane out of six: fast window burns, slow window doesn't
        store = self._store_with_errors([0, 0, 0, 0, 0, 10],
                                        [100] * 5 + [90])
        state = SloState(SloSpec.parse("errors:0.01"), fast_panes=1,
                         slow_panes=6, burn_threshold=5.0, min_volume=20)
        assert state.evaluate(store, pane=5) is None

    def test_min_volume_gates_low_traffic_windows(self):
        store = self._store_with_errors([2], [3])
        state = SloState(SloSpec.parse("errors:0.01"), min_volume=20)
        assert state.evaluate(store, pane=0) is None
        assert state.windows_evaluated == 1

    def test_latency_slo_counts_threshold_violations(self):
        env = _FakeEnv()
        store = WindowStore(env, width_us=100.0)
        for pane in range(6):
            env.now = pane * 100.0 + 1.0
            for i in range(20):
                # 15% of observations blow a 10us threshold
                store.observe("span.latency_us.search",
                              50.0 if i < 3 else 2.0)
        state = SloState(SloSpec.parse("latency:search:p99:10"),
                         burn_threshold=2.0, min_volume=20)
        alert = state.evaluate(store, pane=5)
        assert alert is not None
        assert alert.bad == 3 and alert.total == 20

    def test_to_dict_round_trips_through_json(self):
        state = SloState(SloSpec.parse("availability:0.99"))
        payload = json.loads(json.dumps(state.to_dict()))
        assert payload["name"] == "availability"
        assert payload["windows_evaluated"] == 0


# ---------------------------------------------------------------------------
# Zero-arrival panes and non-finite inputs must never become NaN
# ---------------------------------------------------------------------------
class TestZeroArrivalPanes:
    """A diurnal trough produces panes with zero arrivals.  Nothing in
    the telemetry plane may turn that into a NaN: ``nan < threshold``
    is False, so a NaN burn rate would sail through every alert gate as
    a nonsense alert (or silently suppress a real one)."""

    def test_burn_of_empty_window_is_exactly_zero(self):
        state = SloState(SloSpec.parse("errors:0.01"))
        burn = state._burn(0, 0)
        assert burn == 0.0 and not math.isnan(burn)

    def test_all_empty_panes_never_trip(self):
        env = _FakeEnv()
        store = WindowStore(env, width_us=100.0)
        state = SloState(SloSpec.parse("errors:0.01"), min_volume=0)
        for pane in range(8):
            assert state.evaluate(store, pane=pane) is None
        assert state.windows_evaluated == 8
        assert state.windows_tripped == 0

    def test_empty_fast_pane_amid_traffic_does_not_nan(self):
        # Traffic in earlier panes, then a dead pane: the slow window
        # clears min_volume, the fast pane is empty -> burn_fast must
        # be 0.0 (not 0/0) and the evaluation must not trip.
        env = _FakeEnv()
        store = WindowStore(env, width_us=100.0)
        for pane in range(5):
            env.now = pane * 100.0 + 1.0
            store.inc(OK_STREAM, 90)
            store.inc(ERR_STREAM, 10)
        state = SloState(SloSpec.parse("errors:0.01"), fast_panes=1,
                         slow_panes=6, burn_threshold=2.0, min_volume=20)
        assert state.evaluate(store, pane=5) is None
        assert not state.alerts

    def test_latency_slo_on_idle_panes_does_not_trip(self):
        env = _FakeEnv()
        store = WindowStore(env, width_us=100.0)
        state = SloState(SloSpec.parse("latency:search:p99:10"),
                         min_volume=0)
        for pane in range(6):
            assert state.evaluate(store, pane=pane) is None

    @pytest.mark.parametrize("value", [float("nan"), float("inf"),
                                       float("-inf"), -1.0])
    def test_ddsketch_rejects_bad_values_without_corruption(self, value):
        sketch = DDSketch()
        sketch.add(3.0)
        before = sketch.to_dict()
        with pytest.raises(ValueError):
            sketch.add(value)
        # The failed add must not have touched count/total/min/max:
        # a half-applied NaN poisons every later mean and quantile.
        assert sketch.to_dict() == before
        assert sketch.count == 1
        assert not math.isnan(sketch.mean)

    @pytest.mark.parametrize("spec", ["errors:nan", "errors:inf",
                                      "availability:nan",
                                      "latency:search:p99:nan",
                                      "latency:search:p99:inf"])
    def test_slo_parse_rejects_non_finite_targets(self, spec):
        with pytest.raises(ValueError):
            SloSpec.parse(spec)


# ---------------------------------------------------------------------------
# Gray detector unit behaviour
# ---------------------------------------------------------------------------
class TestGrayDetector:
    def _feed_pane(self, det, pane, medians, family="read@7", count=20):
        for scope, median in medians.items():
            for _ in range(count):
                det.observe(pane, scope, family, median)

    def test_flags_slow_scope_against_clean_peers(self):
        det = GrayDetector(rel_threshold=2.0, min_count=8)
        self._feed_pane(det, 0, {"mn0": 6.0, "mn1": 1.0, "mn2": 1.0})
        flags = det.evaluate(0, 0.0, 250.0)
        assert [f.scope for f in flags] == ["mn0"]
        assert flags[0].kind == "service"
        assert flags[0].rel == pytest.approx(6.0, rel=0.05)

    def test_identical_peers_produce_no_flags(self):
        det = GrayDetector()
        self._feed_pane(det, 0, {f"mn{i}": 2.5 for i in range(4)})
        assert det.evaluate(0, 0.0, 250.0) == []

    def test_single_scope_has_no_peers_no_flags(self):
        det = GrayDetector()
        self._feed_pane(det, 0, {"mn0": 50.0})
        assert det.evaluate(0, 0.0, 250.0) == []

    def test_low_volume_scopes_are_ignored(self):
        det = GrayDetector(min_count=8)
        self._feed_pane(det, 0, {"mn0": 6.0, "mn1": 1.0}, count=3)
        assert det.evaluate(0, 0.0, 250.0) == []

    def test_families_are_never_cross_compared(self):
        # mn0 only serves big writes (slower), mn1 only small reads:
        # different families, so no comparison and no flag
        det = GrayDetector()
        self._feed_pane(det, 0, {"mn0": 8.0}, family="write@12")
        self._feed_pane(det, 0, {"mn1": 1.0}, family="read@7")
        assert det.evaluate(0, 0.0, 250.0) == []

    def test_z_gate_applies_with_four_plus_peers(self):
        # five peers with real spread: rel barely over 2 but z below the
        # bar must not flag
        det = GrayDetector(rel_threshold=2.0, z_threshold=1e9)
        self._feed_pane(det, 0, {"mn0": 2.2, "mn1": 1.0, "mn2": 0.8,
                                 "mn3": 1.2, "mn4": 0.9, "mn5": 1.1})
        assert det.evaluate(0, 0.0, 250.0) == []

    def test_drop_rule_flags_starved_port(self):
        det = GrayDetector(drop_rate_threshold=0.5)
        port_rates = {"mn0.nic_rx.p0": (40, 0),
                      "mn0.nic_rx.p1": (2, 38),   # 95% dropped
                      "mn1.nic_rx.p0": (40, 0)}
        flags = det.evaluate(0, 0.0, 250.0, port_rates)
        assert [f.scope for f in flags] == ["mn0.nic_rx.p1"]
        assert flags[0].kind == "drops"
        assert flags[0].value == pytest.approx(0.95)

    def test_cluster_wide_loss_is_not_a_scoped_fault(self):
        det = GrayDetector()
        port_rates = {"mn0.nic_rx.p0": (20, 20),
                      "mn1.nic_rx.p0": (20, 20),
                      "mn2.nic_rx.p0": (20, 20)}
        assert det.evaluate(0, 0.0, 250.0, port_rates) == []

    def test_prune_bounds_memory(self):
        det = GrayDetector()
        for pane in range(10):
            det.observe(pane, "mn0", "read@7", 1.0)
        det.prune(before_pane=8)
        assert sorted(det._panes) == [8, 9]

    def test_to_dict_is_json_safe(self):
        det = GrayDetector()
        self._feed_pane(det, 0, {"mn0": 6.0, "mn1": 1.0})
        det.evaluate(0, 0.0, 250.0)
        payload = json.loads(json.dumps(det.to_dict()))
        assert payload["scopes_seen"] == ["mn0", "mn1"]
        assert len(payload["flags"]) == 1


class TestDetectorVerdict:
    def _flag(self, scope, pane, kind="service", width=250.0):
        from repro.obs.detect import DetectorFlag
        return DetectorFlag(scope=scope, scope_class="mn", kind=kind,
                            family="read@7", pane=pane,
                            t0=pane * width, t1=(pane + 1) * width,
                            value=6.0, peer=1.0, rel=6.0, z=10.0,
                            count=20)

    def test_gray_caught_within_deadline(self):
        from repro.faults.model import FaultPlan, GrayNode
        plan = FaultPlan(gray_nodes=[GrayNode(mn_id=0, factor=6.0,
                                              start_us=300.0,
                                              end_us=2000.0)])
        verdict = detector_verdict(plan, [self._flag("mn0", pane=2)],
                                   width_us=250.0, windows=3)
        assert verdict["ok"]
        assert verdict["caught"][0]["latency_windows"] <= 3

    def test_late_flag_counts_as_missed(self):
        from repro.faults.model import FaultPlan, GrayNode
        plan = FaultPlan(gray_nodes=[GrayNode(mn_id=0, factor=6.0,
                                              start_us=0.0,
                                              end_us=5000.0)])
        verdict = detector_verdict(plan, [self._flag("mn0", pane=9)],
                                   width_us=250.0, windows=3)
        assert not verdict["ok"] and verdict["missed"]

    def test_uncovered_flag_is_unexplained(self):
        from repro.faults.model import FaultPlan, GrayNode
        plan = FaultPlan(gray_nodes=[GrayNode(mn_id=0, factor=6.0,
                                              start_us=0.0,
                                              end_us=5000.0)])
        verdict = detector_verdict(
            plan, [self._flag("mn0", pane=1), self._flag("mn2", pane=1)],
            width_us=250.0)
        assert not verdict["ok"]
        assert [f["scope"] for f in verdict["unexplained"]] == ["mn2"]

    def test_fault_after_traffic_end_is_not_expected(self):
        # A gray window seeded after the last op completes is invisible
        # to a comparative detector; with traffic_end_us set it must not
        # count as missed (e.g. the mixed campaign's quiescent tail).
        from repro.faults.model import FaultPlan, GrayNode
        plan = FaultPlan(gray_nodes=[GrayNode(mn_id=0, factor=4.0,
                                              start_us=1500.0,
                                              end_us=2400.0)])
        verdict = detector_verdict(plan, [], width_us=250.0,
                                   traffic_end_us=1300.0)
        assert verdict["expected"] == 0 and verdict["ok"]
        # ...but any overlap with live traffic keeps the expectation.
        verdict = detector_verdict(plan, [], width_us=250.0,
                                   traffic_end_us=1600.0)
        assert verdict["expected"] == 1 and not verdict["ok"]

    def test_unscoped_link_fault_is_not_expected(self):
        from repro.faults.model import FaultPlan, LinkFault
        plan = FaultPlan(link_faults=[
            LinkFault(drop_p=0.01, start_us=0.0, end_us=1000.0),
            LinkFault(drop_p=0.01, port=1, start_us=0.0, end_us=1000.0),
        ])
        # neither names an MN, so nothing is expected of the detector
        verdict = detector_verdict(plan, [], width_us=250.0)
        assert verdict["expected"] == 0 and verdict["ok"]


# ---------------------------------------------------------------------------
# The assembled monitor on live beds
# ---------------------------------------------------------------------------
def monitored_ycsb_run(seed, duration_us=1500.0, n_clients=2,
                       n_memory_nodes=2, nic_ports=1, rpc_shards=1,
                       slos=(), hotkeys=8, window_us=250.0,
                       port_affinity="qp", monitored=True):
    """A fusee bed driving seeded YCSB-A clients with the monitor
    attached (tracer always on); returns ``(tracer, health)`` — health
    is None when ``monitored=False``."""
    from repro.harness.runner import run_closed_loop
    from repro.harness.systems import fusee_bed
    from repro.workloads import YcsbConfig, YcsbWorkload

    bed = fusee_bed(n_memory_nodes=n_memory_nodes, replication_factor=2,
                    dataset_bytes=1 << 18, background_interval_us=0.0,
                    nic_ports=nic_ports, rpc_shards=rpc_shards,
                    port_affinity=port_affinity,
                    max_clients=max(256, n_clients + 8))
    config = YcsbConfig(workload="A", n_keys=200)
    seeder = YcsbWorkload(config, seed=seed)
    bed.load((key, seeder.load_value(i))
             for i, key in enumerate(seeder.load_keys()))
    tracer = Tracer()
    bed.cluster.attach_tracer(tracer)
    monitor = None
    if monitored:
        monitor = Monitor(bed.env, bed.cluster.fabric,
                          config=MonitorConfig(window_us=window_us,
                                               hotkey_capacity=hotkeys),
                          slos=[SloSpec.parse(s) for s in slos],
                          race=bed.cluster.race)
        bed.cluster.attach_monitor(monitor)
    clients = [bed.new_client() for _ in range(n_clients)]
    result = run_closed_loop(
        bed.env, clients,
        lambda index: YcsbWorkload(config, seed=seed + 1 + index),
        bed.execute, duration_us=duration_us, monitor=monitor)
    assert result.ops > 0
    return tracer, result.health


class TestMonitorOnCleanBeds:
    def test_windows_quantiles_and_hot_keys_populate(self):
        _tracer, health = monitored_ycsb_run(seed=7)
        rows = health["windows"]["rows"]
        assert len(rows) >= 5
        busy = [row for row in rows if row["ops"]]
        assert busy and all(row["p99_us"] >= row["p50_us"] > 0.0
                            for row in busy)
        assert any("hot_keys" in row for row in busy)
        assert health["hot_keys"]["n"] > 0
        assert health["hot_buckets"]["top"]   # RACE bucket sketch fed
        assert health["run"]["panes_evaluated"] == len(rows)

    def test_clean_64c_2mn_bed_has_zero_false_positives(self):
        _tracer, health = monitored_ycsb_run(
            seed=7, n_clients=64, duration_us=400.0, window_us=100.0,
            hotkeys=0)
        assert health["detector"]["flags"] == []
        assert len(health["detector"]["scopes_seen"]) >= 2

    def test_clean_256c_8mn_multiqueue_bed_has_zero_false_positives(self):
        _tracer, health = monitored_ycsb_run(
            seed=13, n_clients=256, n_memory_nodes=8, nic_ports=4,
            rpc_shards=2, port_affinity="rss", duration_us=250.0,
            window_us=100.0, hotkeys=0)
        assert health["detector"]["flags"] == []
        # per-port and per-shard scopes really were compared
        scopes = health["detector"]["scopes_seen"]
        assert any(".nic_rx" in s for s in scopes)
        assert any(".cpu" in s for s in scopes)

    def test_impossible_latency_slo_trips_and_emits_alert_spans(self):
        tracer, health = monitored_ycsb_run(
            seed=7, slos=("latency:all:p99:0.001",))
        slo = health["slos"][0]
        assert slo["windows_tripped"] > 0
        assert slo["alerts"][0]["burn_slow"] >= 2.0
        alert_spans = [s for s in tracer.spans
                       if s.op.startswith("alert.slo.")]
        assert len(alert_spans) == slo["windows_tripped"]
        # alert spans ride negative sids on the shared alerts track
        assert all(s.sid < 0 and s.cid == -1 for s in alert_spans)

    def test_achievable_slo_stays_quiet(self):
        _tracer, health = monitored_ycsb_run(
            seed=7, slos=("errors:0.5", "latency:all:p99:1e6"))
        assert all(s["windows_tripped"] == 0 for s in health["slos"])

    def test_alert_spans_render_as_canonical_jsonl(self):
        from repro.obs import jsonl_lines
        tracer, _health = monitored_ycsb_run(
            seed=7, slos=("latency:all:p99:0.001",))
        lines = jsonl_lines(tracer)
        alert_lines = [line for line in lines
                       if json.loads(line).get("op", "").startswith("alert.")]
        assert alert_lines
        for line in alert_lines:
            record = json.loads(line)
            assert record["sid"] < 0
            assert json.dumps(record, sort_keys=True,
                              separators=(",", ":")) == line

    def test_health_artifact_round_trips_through_json(self, tmp_path):
        _tracer, health = monitored_ycsb_run(seed=7)
        path = tmp_path / "health.json"
        write_health(health, path)
        loaded = load_health(path)
        assert health_fingerprint(loaded) == health_fingerprint(health)
        report = render_health(loaded)
        assert "health report" in report and "gray detector" in report

    def test_kv_ops_from_spans_skips_alert_spans(self):
        from repro.check.history import kv_ops_from_spans
        tracer, _health = monitored_ycsb_run(
            seed=7, slos=("latency:all:p99:0.001",))
        ops = kv_ops_from_spans(tracer.spans)
        assert ops
        assert all(op.kind in KV_OPS and op.op_id >= 0 for op in ops)


class TestMonitorOnFaultedBeds:
    def test_gray_campaign_caught_within_three_windows(self):
        from repro.faults.campaign import run_campaign
        report = run_campaign("gray", monitor_config=MonitorConfig())
        assert report.linearizable
        verdict = report.detector
        assert verdict["ok"], verdict
        assert verdict["expected"] == 1
        assert all(row["latency_windows"] <= 3
                   for row in verdict["caught"])
        assert verdict["unexplained"] == []
        assert report.sound

    def test_port_scoped_gray_fault_is_caught_on_the_port(self):
        from repro.faults.campaign import run_campaign
        from repro.faults.model import FaultPlan, GrayNode
        plan = FaultPlan(gray_nodes=[GrayNode(
            mn_id=0, factor=6.0, port=1, start_us=300.0, end_us=2200.0)])
        report = run_campaign("portgray", plan=plan, nic_ports=2,
                              rpc_shards=2,
                              monitor_config=MonitorConfig())
        verdict = report.detector
        assert verdict["ok"], verdict
        assert verdict["caught"][0]["flag_scope"].endswith(".p1")
        assert report.sound

    def test_port_scoped_partition_is_caught_by_drop_rule(self):
        from repro.faults.campaign import run_campaign
        from repro.faults.model import CN, FaultPlan, Partition
        plan = FaultPlan(partitions=[Partition(
            a=CN, b=0, port=1, start_us=300.0, end_us=900.0)])
        report = run_campaign("portdrop", plan=plan, nic_ports=2,
                              monitor_config=MonitorConfig())
        verdict = report.detector
        assert verdict["ok"], verdict
        assert verdict["caught"][0]["flag_scope"].endswith(".p1")
        assert report.sound

    def test_detector_failure_breaks_campaign_soundness(self):
        from repro.faults.campaign import CampaignReport
        from repro.faults.model import FaultPlan
        report = CampaignReport(name="x", seed=0, retries=True,
                                plan=FaultPlan())
        assert report.sound
        report.detector = {"ok": False, "expected": 1, "caught": [],
                           "missed": [{"fault": "gray"}],
                           "unexplained": []}
        assert not report.detector_ok
        assert not report.sound

    def test_unmonitored_campaign_report_unchanged(self):
        from repro.faults.campaign import run_campaign
        report = run_campaign("gray")
        assert report.detector is None and report.health is None
        assert report.detector_ok    # vacuously sound
        assert report.sound
