"""Tests for RACE hashing geometry, parsing, and placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.race import (
    BUCKETS_PER_GROUP,
    RaceConfig,
    RaceHashing,
    hash_key,
)
from repro.core.wire import SLOT_SIZE, pack_slot


def make_race(n_subtables=4, n_groups=16, spb=7, replicas=2):
    config = RaceConfig(n_subtables=n_subtables, n_groups=n_groups,
                        slots_per_bucket=spb)
    placements = {
        st_: [(mn, mn * 1000 + st_ * config.subtable_bytes)
              for mn in range(replicas)]
        for st_ in range(n_subtables)}
    return RaceHashing(config, placements)


class TestConfig:
    def test_geometry_arithmetic(self):
        cfg = RaceConfig(n_subtables=2, n_groups=8, slots_per_bucket=7)
        assert cfg.bucket_bytes == 56
        assert cfg.slots_per_subtable == 8 * 3 * 7
        assert cfg.subtable_bytes == cfg.slots_per_subtable * 8
        assert cfg.slots_per_key == 28

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            RaceConfig(n_groups=1)

    def test_placement_must_cover_subtables(self):
        cfg = RaceConfig(n_subtables=4)
        with pytest.raises(ValueError):
            RaceHashing(cfg, {0: [(0, 0)]})


class TestKeyHashing:
    def test_deterministic(self):
        race = make_race()
        assert race.key_meta(b"alpha") == race.key_meta(b"alpha")

    def test_groups_distinct(self):
        race = make_race()
        for i in range(300):
            meta = race.key_meta(f"key-{i}".encode())
            assert meta.group1 != meta.group2

    def test_subtable_in_range(self):
        race = make_race(n_subtables=4)
        for i in range(100):
            assert 0 <= race.key_meta(f"k{i}".encode()).subtable < 4

    def test_fingerprint_nonzero_byte(self):
        race = make_race()
        for i in range(100):
            assert 1 <= race.key_meta(f"k{i}".encode()).fingerprint <= 255

    def test_keys_spread_over_subtables(self):
        race = make_race(n_subtables=4)
        seen = {race.key_meta(f"key-{i}".encode()).subtable
                for i in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_hash_key_stable_128_bits(self):
        h = hash_key(b"x")
        assert 0 <= h < (1 << 128)
        assert h == hash_key(b"x")


class TestSlotRefs:
    def test_locations_primary_first(self):
        race = make_race(replicas=3)
        ref = race.slot_ref(1, 5)
        locs = ref.locations()
        assert locs[0] == ref.primary()
        assert locs[1:] == ref.backups()
        assert len(locs) == 3

    def test_slot_addresses_are_8_byte_strided(self):
        race = make_race()
        a = race.slot_ref(0, 0).primary()[1]
        b = race.slot_ref(0, 1).primary()[1]
        assert b - a == SLOT_SIZE

    def test_out_of_range_slot_rejected(self):
        race = make_race()
        with pytest.raises(IndexError):
            race.slot_ref(0, race.config.slots_per_subtable)

    def test_reconfigure_changes_placement(self):
        race = make_race(replicas=2)
        race.reconfigure(0, [(9, 0)])
        assert race.slot_ref(0, 0).placement == ((9, 0),)
        assert race.slot_ref(0, 0).backups() == []

    def test_subtables_on(self):
        race = make_race(n_subtables=4, replicas=2)
        assert race.subtables_on(0) == [0, 1, 2, 3]
        assert race.subtables_on(5) == []


class TestBucketOps:
    def test_two_contiguous_reads(self):
        race = make_race()
        meta = race.key_meta(b"somekey")
        ops = race.bucket_read_ops(meta)
        assert len(ops) == 2
        for op in ops:
            assert op.length == 2 * race.config.bucket_bytes

    def test_reads_cover_both_groups(self):
        race = make_race()
        meta = race.key_meta(b"somekey")
        mn, base = race.placement(meta.subtable)[0]
        ops = race.bucket_read_ops(meta)
        spb = race.config.slots_per_bucket
        cb1 = (meta.group1 * BUCKETS_PER_GROUP) * spb * SLOT_SIZE
        cb2 = (meta.group2 * BUCKETS_PER_GROUP + 1) * spb * SLOT_SIZE
        offsets = sorted(op.addr - base for op in ops)
        assert offsets == sorted([cb1, cb2])

    def test_replica_selects_placement(self):
        race = make_race(replicas=2)
        meta = race.key_meta(b"k")
        ops0 = race.bucket_read_ops(meta, replica=0)
        ops1 = race.bucket_read_ops(meta, replica=1)
        assert ops0[0].mn_id != ops1[0].mn_id


class TestParsing:
    def payload_pair(self, race, meta, slots=None):
        """Build combined-bucket payloads with the given {index: word}."""
        cfg = race.config
        ranges = race._combined_ranges(meta)
        slots = slots or {}
        payloads = []
        for start, count in ranges:
            buf = bytearray(count * SLOT_SIZE)
            for i in range(count):
                word = slots.get(start + i, 0)
                buf[i * 8:(i + 1) * 8] = word.to_bytes(8, "big")
            payloads.append(bytes(buf))
        return payloads

    def test_all_empty(self):
        race = make_race()
        meta = race.key_meta(b"key")
        view = race.parse_buckets(meta, self.payload_pair(race, meta))
        assert view.matches == ()
        assert view.occupied == 0
        assert len(view.empties) > 0

    def test_fingerprint_match_found(self):
        race = make_race()
        meta = race.key_meta(b"key")
        ranges = race._combined_ranges(meta)
        idx = ranges[0][0]
        word = pack_slot(meta.fingerprint, 1, 0x1000)
        view = race.parse_buckets(
            meta, self.payload_pair(race, meta, {idx: word}))
        assert len(view.matches) == 1
        assert view.matches[0].word == word
        assert view.matches[0].ref.slot_index == idx

    def test_non_matching_fingerprint_ignored(self):
        race = make_race()
        meta = race.key_meta(b"key")
        idx = race._combined_ranges(meta)[0][0]
        other_fp = (meta.fingerprint % 255) + 1
        word = pack_slot(other_fp, 1, 0x1000)
        view = race.parse_buckets(
            meta, self.payload_pair(race, meta, {idx: word}))
        assert view.matches == ()
        assert view.occupied == 1

    def test_occupied_slots_not_in_empties(self):
        race = make_race()
        meta = race.key_meta(b"key")
        idx = race._combined_ranges(meta)[0][0]
        word = pack_slot(meta.fingerprint, 1, 0x1000)
        view = race.parse_buckets(
            meta, self.payload_pair(race, meta, {idx: word}))
        assert idx not in {ref.slot_index for ref in view.empties}

    def test_matches_sorted_by_slot_index(self):
        race = make_race()
        meta = race.key_meta(b"key")
        r = race._combined_ranges(meta)
        i1, i2 = r[0][0] + 1, r[1][0] + 2
        w = lambda p: pack_slot(meta.fingerprint, 1, p)
        view = race.parse_buckets(
            meta, self.payload_pair(race, meta, {i2: w(0x2000), i1: w(0x1000)}))
        indexes = [m.ref.slot_index for m in view.matches]
        assert indexes == sorted(indexes)

    def test_less_loaded_bucket_preferred_for_inserts(self):
        race = make_race()
        meta = race.key_meta(b"key")
        ranges = race._combined_ranges(meta)
        # Fill 3 slots of combined bucket 1, none of combined bucket 2.
        fill = {ranges[0][0] + i: pack_slot(7, 1, 0x100 + i)
                for i in range(3)}
        view = race.parse_buckets(meta, self.payload_pair(race, meta, fill))
        first_empty = view.empties[0].slot_index
        cb2_indexes = set(range(ranges[1][0], ranges[1][0] + ranges[1][1]))
        assert first_empty in cb2_indexes

    def test_payload_length_mismatch_rejected(self):
        race = make_race()
        meta = race.key_meta(b"key")
        with pytest.raises(ValueError):
            race.parse_buckets(meta, [b"", b""])

    @given(st.binary(min_size=1, max_size=16))
    @settings(max_examples=50)
    def test_candidate_count_bounded_by_associativity(self, key):
        race = make_race()
        meta = race.key_meta(key)
        word = pack_slot(meta.fingerprint, 1, 0x40)
        ranges = race._combined_ranges(meta)
        full = {}
        for start, count in ranges:
            for i in range(count):
                full[start + i] = word
        view = race.parse_buckets(meta, self.payload_pair(race, meta, full))
        assert len(view.matches) <= race.config.slots_per_key
        assert view.empties == ()


class TestWholeSubtableHelpers:
    def test_subtable_read_op_covers_all_slots(self):
        race = make_race()
        op = race.subtable_read_op(0, 0, 0)
        assert op.length == race.config.subtable_bytes

    def test_iter_slot_words(self):
        race = make_race()
        payload = bytearray(race.config.subtable_bytes)
        payload[8:16] = (42).to_bytes(8, "big")
        words = dict(race.iter_slot_words(bytes(payload)))
        assert words[1] == 42
        assert words[0] == 0
        assert len(words) == race.config.slots_per_subtable
