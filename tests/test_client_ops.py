"""End-to-end tests of FUSEE client operations on a live cluster."""

import pytest

from repro.core import ClusterConfig, FuseeCluster
from repro.core.client import ClientCrashed, CrashPoint
from repro.core.snapshot import Outcome
from tests.conftest import small_config, run


@pytest.fixture
def cluster():
    return FuseeCluster(small_config())


@pytest.fixture
def client(cluster):
    return cluster.new_client()


class TestBasicOps:
    def test_insert_and_search(self, cluster, client):
        assert run(cluster, client.insert(b"k", b"v")).ok
        result = run(cluster, client.search(b"k"))
        assert result.ok and result.value == b"v"

    def test_search_missing(self, cluster, client):
        assert not run(cluster, client.search(b"missing")).ok

    def test_insert_duplicate_reports_existed(self, cluster, client):
        run(cluster, client.insert(b"k", b"v"))
        result = run(cluster, client.insert(b"k", b"w"))
        assert not result.ok and result.existed
        assert run(cluster, client.search(b"k")).value == b"v"

    def test_update_changes_value(self, cluster, client):
        run(cluster, client.insert(b"k", b"v1"))
        assert run(cluster, client.update(b"k", b"v2")).ok
        assert run(cluster, client.search(b"k")).value == b"v2"

    def test_update_missing_fails(self, cluster, client):
        assert not run(cluster, client.update(b"nope", b"v")).ok

    def test_delete_removes_key(self, cluster, client):
        run(cluster, client.insert(b"k", b"v"))
        assert run(cluster, client.delete(b"k")).ok
        assert not run(cluster, client.search(b"k")).ok

    def test_delete_missing_fails(self, cluster, client):
        assert not run(cluster, client.delete(b"nope")).ok

    def test_reinsert_after_delete(self, cluster, client):
        run(cluster, client.insert(b"k", b"v1"))
        run(cluster, client.delete(b"k"))
        assert run(cluster, client.insert(b"k", b"v2")).ok
        assert run(cluster, client.search(b"k")).value == b"v2"

    def test_empty_value(self, cluster, client):
        assert run(cluster, client.insert(b"k", b"")).ok
        result = run(cluster, client.search(b"k"))
        assert result.ok and result.value == b""

    def test_update_chain(self, cluster, client):
        run(cluster, client.insert(b"k", b"v0"))
        for i in range(1, 20):
            assert run(cluster, client.update(b"k", f"v{i}".encode())).ok
        assert run(cluster, client.search(b"k")).value == b"v19"

    def test_many_keys(self, cluster, client):
        n = 150
        for i in range(n):
            assert run(cluster, client.insert(f"key-{i}".encode(),
                                              f"val-{i}".encode())).ok
        for i in range(n):
            result = run(cluster, client.search(f"key-{i}".encode()))
            assert result.ok and result.value == f"val-{i}".encode()

    def test_value_sizes_across_classes(self, cluster, client):
        for size in (0, 1, 30, 100, 300, 900):
            key = f"size-{size}".encode()
            value = bytes(size) if size == 0 else b"x" * size
            assert run(cluster, client.insert(key, value)).ok
            assert run(cluster, client.search(key)).value == value

    def test_binary_keys_and_values(self, cluster, client):
        key = bytes(range(32))
        value = bytes(reversed(range(256)))
        assert run(cluster, client.insert(key, value)).ok
        assert run(cluster, client.search(key)).value == value


class TestCrossClient:
    def test_visibility(self, cluster):
        a, b = cluster.new_client(), cluster.new_client()
        run(cluster, a.insert(b"shared", b"from-a"))
        assert run(cluster, b.search(b"shared")).value == b"from-a"

    def test_remote_update_visible_despite_cache(self, cluster):
        a, b = cluster.new_client(), cluster.new_client()
        run(cluster, a.insert(b"k", b"v1"))
        assert run(cluster, a.search(b"k")).value == b"v1"  # warm a's cache
        run(cluster, b.update(b"k", b"v2"))
        assert run(cluster, a.search(b"k")).value == b"v2"

    def test_remote_delete_visible_despite_cache(self, cluster):
        a, b = cluster.new_client(), cluster.new_client()
        run(cluster, a.insert(b"k", b"v"))
        run(cluster, a.search(b"k"))
        run(cluster, b.delete(b"k"))
        assert not run(cluster, a.search(b"k")).ok

    def test_remote_update_visible_to_updater(self, cluster):
        a, b = cluster.new_client(), cluster.new_client()
        run(cluster, a.insert(b"k", b"v1"))
        run(cluster, a.update(b"k", b"v2"))   # a's cache now points at v2
        run(cluster, b.update(b"k", b"v3"))
        assert run(cluster, a.update(b"k", b"v4")).ok
        assert run(cluster, b.search(b"k")).value == b"v4"

    def test_concurrent_updates_converge(self, cluster):
        clients = [cluster.new_client() for _ in range(6)]
        seed = cluster.new_client()
        run(cluster, seed.insert(b"hot", b"initial"))
        results = {}

        def updater(i, c):
            yield cluster.env.timeout(i * 0.1)
            results[i] = yield from c.update(b"hot", f"value-{i}".encode())

        procs = [cluster.env.process(updater(i, c))
                 for i, c in enumerate(clients)]
        cluster.env.run(until=cluster.env.all_of(procs))
        assert all(r.ok for r in results.values())
        final = run(cluster, seed.search(b"hot")).value
        assert final in {f"value-{i}".encode() for i in range(6)}

    def test_concurrent_inserts_same_key(self, cluster):
        clients = [cluster.new_client() for _ in range(4)]
        results = {}

        def inserter(i, c):
            yield cluster.env.timeout(i * 0.05)
            results[i] = yield from c.insert(b"dup", f"value-{i}".encode())

        procs = [cluster.env.process(inserter(i, c))
                 for i, c in enumerate(clients)]
        cluster.env.run(until=cluster.env.all_of(procs))
        reader = cluster.new_client()
        final = run(cluster, reader.search(b"dup"))
        assert final.ok
        assert final.value in {f"value-{i}".encode() for i in range(4)}

    def test_concurrent_mixed_ops_distinct_keys(self, cluster):
        clients = [cluster.new_client() for _ in range(8)]

        def worker(i, c):
            key = f"key-{i}".encode()
            result = yield from c.insert(key, b"a")
            assert result.ok
            result = yield from c.update(key, b"b")
            assert result.ok
            result = yield from c.search(key)
            assert result.value == b"b"

        procs = [cluster.env.process(worker(i, c))
                 for i, c in enumerate(clients)]
        cluster.env.run(until=cluster.env.all_of(procs))


class TestRttAccounting:
    def batches(self, cluster):
        return cluster.fabric.stats.batches

    def test_search_cache_hit_is_one_rtt(self, cluster, client):
        run(cluster, client.insert(b"k", b"v"))
        run(cluster, client.search(b"k"))  # warm
        before = self.batches(cluster)
        run(cluster, client.search(b"k"))
        assert self.batches(cluster) - before == 1

    def test_search_miss_is_two_rtts(self, cluster):
        a, b = cluster.new_client(), cluster.new_client()
        run(cluster, a.insert(b"k", b"v"))
        before = self.batches(cluster)
        run(cluster, b.search(b"k"))
        assert self.batches(cluster) - before == 2

    def test_update_cache_hit_is_four_rtts(self, cluster, client):
        """Fig. 9: write KV + read slot | CAS backups | commit log | CAS
        primary = 4 doorbell batches (the unsignaled cleanup write is
        posted in the same instant as phase 4)."""
        run(cluster, client.insert(b"k", b"v" * 100))
        before = self.batches(cluster)
        result = run(cluster, client.update(b"k", b"w" * 100))
        assert result.outcome is Outcome.WIN_RULE1
        used = self.batches(cluster) - before
        assert used == 5  # 4 awaited phases + 1 fire-and-forget cleanup

    def test_insert_uncontended_phases(self, cluster, client):
        run(cluster, client.insert(b"warm", b"v"))  # publish the list head
        before = self.batches(cluster)
        result = run(cluster, client.insert(b"fresh", b"v"))
        assert result.ok
        used = self.batches(cluster) - before
        # phase1 (KV write + bucket read), CAS backups, log commit, CAS
        # primary, dedup bucket re-read (RACE's post-install duplicate
        # check); allocation RPCs don't post doorbell batches.
        assert used == 5

    def test_first_alloc_publishes_list_head_once(self, cluster, client):
        before = self.batches(cluster)
        run(cluster, client.insert(b"fresh", b"v"))
        assert self.batches(cluster) - before == 6  # +1 head publish
        before = self.batches(cluster)
        run(cluster, client.insert(b"fresh2", b"v"))
        assert self.batches(cluster) - before == 5


class TestVariants:
    def test_no_cache_variant(self, cluster):
        client = cluster.new_client(cache_enabled=False)
        run(cluster, client.insert(b"k", b"v1"))
        assert run(cluster, client.search(b"k")).value == b"v1"
        assert run(cluster, client.update(b"k", b"v2")).ok
        assert run(cluster, client.search(b"k")).value == b"v2"
        assert len(client.cache) == 0

    def test_sequential_variant_crud(self, cluster):
        client = cluster.new_client(replication_mode="sequential")
        run(cluster, client.insert(b"k", b"v1"))
        assert run(cluster, client.search(b"k")).value == b"v1"
        assert run(cluster, client.update(b"k", b"v2")).ok
        assert run(cluster, client.delete(b"k")).ok
        assert not run(cluster, client.search(b"k")).ok

    def test_sequential_concurrent_updates_converge(self, cluster):
        clients = [cluster.new_client(replication_mode="sequential")
                   for _ in range(4)]
        seed = cluster.new_client()
        run(cluster, seed.insert(b"hot", b"init"))

        def updater(i, c):
            yield cluster.env.timeout(i * 0.01)
            result = yield from c.update(b"hot", f"v{i}".encode())
            assert result.ok

        procs = [cluster.env.process(updater(i, c))
                 for i, c in enumerate(clients)]
        cluster.env.run(until=cluster.env.all_of(procs))
        final = run(cluster, seed.search(b"hot"))
        assert final.ok

    def test_single_replica_config(self):
        cluster = FuseeCluster(small_config(n_memory_nodes=2,
                                            replication_factor=1))
        client = cluster.new_client()
        run(cluster, client.insert(b"k", b"v"))
        assert run(cluster, client.search(b"k")).value == b"v"
        assert run(cluster, client.update(b"k", b"w")).ok
        assert run(cluster, client.delete(b"k")).ok

    def test_index_replication_override(self):
        cluster = FuseeCluster(small_config(n_memory_nodes=3,
                                            replication_factor=2,
                                            index_replication=1))
        client = cluster.new_client()
        run(cluster, client.insert(b"k", b"v"))
        ref = client.race.slot_ref(0, 0)
        assert len(ref.placement) == 1
        assert run(cluster, client.search(b"k")).value == b"v"

    def test_five_way_replication(self):
        cluster = FuseeCluster(small_config(n_memory_nodes=5,
                                            replication_factor=5))
        client = cluster.new_client()
        run(cluster, client.insert(b"k", b"v"))
        assert run(cluster, client.update(b"k", b"w")).ok
        assert run(cluster, client.search(b"k")).value == b"w"


class TestReplicaConsistency:
    def test_index_replicas_identical_after_ops(self, cluster, client):
        for i in range(40):
            run(cluster, client.insert(f"k{i}".encode(), b"v"))
        for i in range(0, 40, 2):
            run(cluster, client.update(f"k{i}".encode(), b"w"))
        for i in range(0, 40, 4):
            run(cluster, client.delete(f"k{i}".encode()))
        race = cluster.race
        for subtable in range(race.config.n_subtables):
            images = []
            for mn, base in race.placement(subtable):
                node = cluster.fabric.node(mn)
                images.append(bytes(
                    node.memory[base:base + race.config.subtable_bytes]))
            assert all(img == images[0] for img in images)

    def test_kv_replicas_identical(self, cluster, client):
        run(cluster, client.insert(b"k", b"payload"))
        entry = client.cache.peek(b"k")
        from repro.core.wire import unpack_slot
        slot = unpack_slot(entry.slot_word)
        images = []
        for mn, addr in cluster.region_map.translate(slot.pointer):
            node = cluster.fabric.node(mn)
            images.append(bytes(node.memory[addr:addr + slot.block_bytes]))
        assert len(images) == 2
        assert images[0] == images[1]


class TestMaintenance:
    def test_updates_feed_reclamation(self, cluster, client):
        run(cluster, client.insert(b"k", b"v1"))
        for i in range(5):
            run(cluster, client.update(b"k", f"v{i}".encode()))
        assert client.allocator.pending_free_count >= 5
        reclaimed = run(cluster, client.maintenance())
        assert reclaimed >= 5
        assert client.allocator.pending_free_count == 0

    def test_reclaimed_memory_is_reused(self, cluster, client):
        """Updates + maintenance let the store run indefinitely in
        bounded memory."""
        run(cluster, client.insert(b"k", b"v"))
        blocks_before = None
        for round_no in range(8):
            for i in range(40):
                run(cluster, client.update(b"k", f"{round_no}-{i}".encode()))
            run(cluster, client.maintenance())
            if round_no == 3:
                blocks_before = client.allocator.stats_blocks_allocated
        assert client.allocator.stats_blocks_allocated == blocks_before


class TestCrashPoints:
    def test_c0_crash_leaves_torn_object(self, cluster, client):
        run(cluster, client.insert(b"k", b"v"))
        client.arm_crash(CrashPoint.C0)
        with pytest.raises(ClientCrashed):
            run(cluster, client.update(b"k", b"w"))
        assert client.crashed
        # the index still serves the old value to other clients
        other = cluster.new_client()
        assert run(cluster, other.search(b"k")).value == b"v"

    def test_crashed_client_rejects_ops(self, cluster, client):
        client.arm_crash(CrashPoint.C0)
        with pytest.raises(ClientCrashed):
            run(cluster, client.insert(b"k", b"v"))
        with pytest.raises(ClientCrashed):
            run(cluster, client.search(b"k"))

    def test_c1_crash_backups_modified_primary_not(self, cluster, client):
        run(cluster, client.insert(b"k", b"v"))
        entry = client.cache.peek(b"k")
        ref, old_word = entry.slot_ref, entry.slot_word
        client.arm_crash(CrashPoint.C1)
        with pytest.raises(ClientCrashed):
            run(cluster, client.update(b"k", b"w"))
        primary_mn, primary_addr = ref.primary()
        assert cluster.fabric.node(primary_mn).read_word(primary_addr) == old_word
        for mn, addr in ref.backups():
            assert cluster.fabric.node(mn).read_word(addr) != old_word

    def test_c2_crash_log_committed_primary_stale(self, cluster, client):
        run(cluster, client.insert(b"k", b"v"))
        entry = client.cache.peek(b"k")
        ref, old_word = entry.slot_ref, entry.slot_word
        client.arm_crash(CrashPoint.C2)
        with pytest.raises(ClientCrashed):
            run(cluster, client.update(b"k", b"w"))
        primary_mn, primary_addr = ref.primary()
        assert cluster.fabric.node(primary_mn).read_word(primary_addr) == old_word

    def test_c3_crash_primary_modified(self, cluster, client):
        run(cluster, client.insert(b"k", b"v"))
        entry = client.cache.peek(b"k")
        ref, old_word = entry.slot_ref, entry.slot_word
        client.arm_crash(CrashPoint.C3)
        with pytest.raises(ClientCrashed):
            run(cluster, client.update(b"k", b"w"))
        primary_mn, primary_addr = ref.primary()
        assert cluster.fabric.node(primary_mn).read_word(primary_addr) != old_word
        # other clients already see the new value
        other = cluster.new_client()
        assert run(cluster, other.search(b"k")).value == b"w"
