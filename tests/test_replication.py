"""Tests for the pluggable replication seam (repro.core.replication).

Three layers:

* registry — every strategy is discoverable by name, config validation
  is registry-driven (an unknown mode fails listing the registered
  names), and ``create_protocol`` hands out per-client instances;
* SWARM slot semantics — the 1-RTT broadcast fast path, the
  guard-read-then-CAS fixup loop (including abandonment when a later
  round commits mid-fixup), validated-only reads, and the degraded
  survivor-read rules, all on raw replicated slots with real simulated
  latencies (mirroring tests/test_snapshot.py for SNAPSHOT);
* recovery — each protocol's ``repair_choice`` hook picks the word the
  master installs when surviving replicas disagree after an MN crash.
"""

import pytest

from repro.core.client import ClientConfig
from repro.core.linearizability import History, check_linearizable
from repro.core.race import SlotRef
from repro.core.replication import (
    REPLICATION_PROTOCOLS,
    ReplicationProtocol,
    SequentialProtocol,
    SnapshotProtocol,
    SwarmProtocol,
    create_protocol,
    register_protocol,
    registered_protocols,
    swarm_read,
    swarm_write,
    validate_replication_mode,
)
from repro.core.snapshot import Outcome
from repro.rdma import Fabric, FabricConfig, MemoryNode
from repro.sim import Environment


def make_slot(r=3):
    """A fabric with r MNs, each holding one replica of a single slot."""
    env = Environment()
    fabric = Fabric(env, FabricConfig())
    for mn in range(r):
        fabric.add_node(MemoryNode(env, mn, capacity=64))
    ref = SlotRef(subtable=0, slot_index=0,
                  placement=tuple((mn, 0) for mn in range(r)))
    return env, fabric, ref


def slot_values(fabric, ref):
    return [fabric.node(mn).read_word(addr) for mn, addr in ref.locations()]


# --------------------------------------------------------------------------
# Registry + config validation
# --------------------------------------------------------------------------
class TestRegistry:
    def test_all_three_strategies_registered(self):
        assert registered_protocols() == ["sequential", "snapshot", "swarm"]

    def test_registry_names_match_classes(self):
        for name, cls in REPLICATION_PROTOCOLS.items():
            assert cls.name == name
            assert issubclass(cls, ReplicationProtocol)

    def test_create_protocol_instantiates_per_client(self):
        proto = create_protocol("swarm", cid=3)
        assert isinstance(proto, SwarmProtocol)
        assert proto.cid == 3
        assert isinstance(create_protocol("snapshot"), SnapshotProtocol)
        assert isinstance(create_protocol("sequential"), SequentialProtocol)

    def test_unknown_mode_lists_registered_names(self):
        with pytest.raises(ValueError) as err:
            validate_replication_mode("bogus")
        message = str(err.value)
        assert "bogus" in message
        for name in registered_protocols():
            assert name in message

    def test_nameless_protocol_rejected(self):
        class Anonymous(ReplicationProtocol):
            pass

        with pytest.raises(ValueError):
            register_protocol(Anonymous)
        assert Anonymous not in REPLICATION_PROTOCOLS.values()

    def test_lose_semantics_flags(self):
        # chain replication serializes writers: a lost CAS retries the
        # op; the last-writer-wins protocols linearize before the winner
        assert SequentialProtocol.retry_on_lose
        assert not SnapshotProtocol.retry_on_lose
        assert not SwarmProtocol.retry_on_lose


class TestClientConfigValidation:
    def test_default_is_snapshot(self):
        assert ClientConfig().replication_mode == "snapshot"

    @pytest.mark.parametrize("name", ["snapshot", "sequential", "swarm"])
    def test_every_registered_mode_accepted(self, name):
        assert ClientConfig(replication_mode=name).replication_mode == name

    def test_unknown_mode_fails_with_registered_names(self):
        with pytest.raises(ValueError) as err:
            ClientConfig(replication_mode="paxos")
        message = str(err.value)
        assert "paxos" in message
        for name in registered_protocols():
            assert name in message

    def test_client_instantiates_configured_protocol(self):
        from tests.conftest import small_config
        from repro.core import FuseeCluster

        cluster = FuseeCluster(small_config())
        client = cluster.new_client(replication_mode="swarm")
        assert isinstance(client.protocol, SwarmProtocol)
        assert client.protocol.cid == client.cid

    def test_swarm_cluster_round_trip(self):
        """End-to-end smoke: a swarm-mode cluster serves the full op mix."""
        from tests.conftest import small_config
        from repro.core import FuseeCluster

        cluster = FuseeCluster(small_config())
        client = cluster.new_client(replication_mode="swarm")
        assert cluster.run_op(client.insert(b"k", b"v1")).ok
        assert cluster.run_op(client.update(b"k", b"v2")).ok
        result = cluster.run_op(client.search(b"k"))
        assert result.ok and result.value == b"v2"
        assert cluster.run_op(client.delete(b"k")).ok
        assert not cluster.run_op(client.search(b"k")).ok


# --------------------------------------------------------------------------
# SWARM write: 1-RTT fast path, fixup loop, failure escalation
# --------------------------------------------------------------------------
class TestSwarmWrite:
    @pytest.mark.parametrize("r", [1, 2, 3, 5])
    def test_uncontended_write_is_one_rtt(self, r):
        env, fabric, ref = make_slot(r)

        def writer():
            return (yield from swarm_write(fabric, ref, 0, 42))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.WIN_SWARM
        assert result.rtts == 1
        assert slot_values(fabric, ref) == [42] * r

    def test_write_requires_distinct_value(self):
        env, fabric, ref = make_slot(2)

        def writer():
            return (yield from swarm_write(fabric, ref, 5, 5))

        with pytest.raises(ValueError):
            env.run(until=env.process(writer()))

    def test_loser_returns_in_one_rtt_without_spinning(self):
        env, fabric, ref = make_slot(3)
        for mn in range(3):
            fabric.node(mn).write_word(0, 99)  # a round already committed

        def writer():
            return (yield from swarm_write(fabric, ref, 0, 42))

        start = env.now
        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.LOSE
        assert result.committed == 99
        assert result.rtts == 1
        # one broadcast round trip, no waiting rounds (SNAPSHOT losers spin)
        assert env.now - start <= 3 * fabric.config.one_way_delay_us

    def test_fixup_converges_divergent_backup(self):
        """A backup polluted by a dead same-round competitor is converged
        by the winner: guard read (primary still ours) + guarded CAS."""
        env, fabric, ref = make_slot(3)
        fabric.node(1).write_word(0, 77)  # uncommitted loser debris

        def writer():
            return (yield from swarm_write(fabric, ref, 0, 42))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.WIN_SWARM_FIXUP
        # broadcast + one guard read + one fixup CAS batch
        assert result.rtts == 3
        assert slot_values(fabric, ref) == [42, 42, 42]

    def test_fixup_round_converges_multiple_backups_in_one_batch(self):
        env, fabric, ref = make_slot(4)
        fabric.node(1).write_word(0, 77)
        fabric.node(3).write_word(0, 88)

        def writer():
            return (yield from swarm_write(fabric, ref, 0, 42))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.WIN_SWARM_FIXUP
        assert result.rtts == 3  # both divergent backups share one batch
        assert slot_values(fabric, ref) == [42] * 4

    def test_guard_read_abandons_fixup_after_later_round_commits(self):
        """The soundness fix: when a newer round commits before the fixup
        CAS is issued, the per-round guard read sees the primary moved
        past v_new and abandons — no CAS that could regress a replica."""
        env, fabric, ref = make_slot(3)
        fabric.node(1).write_word(0, 77)  # forces the fixup path

        def interloper():
            # A later round commits right after our broadcast lands.
            while fabric.node(0).read_word(0) != 42:
                yield env.timeout(0.05)
            fabric.node(0).write_word(0, 555)

        def writer():
            return (yield from swarm_write(fabric, ref, 0, 42))

        env.process(interloper())
        result = env.run(until=env.process(writer()))
        # We still won our round (the primary CAS succeeded) ...
        assert result.outcome is Outcome.WIN_SWARM_FIXUP
        # ... but the fixup stopped at the guard read: broadcast + guard,
        # no fixup CAS was ever posted against the stale observation.
        assert result.rtts == 2
        assert fabric.node(1).read_word(0) == 77

    def test_fixup_exhaustion_escalates(self):
        env, fabric, ref = make_slot(2)
        fabric.node(1).write_word(0, 77)

        def writer():
            return (yield from swarm_write(fabric, ref, 0, 42,
                                           max_fixup_rounds=0))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.NEED_MASTER

    def test_backup_crash_needs_master(self):
        env, fabric, ref = make_slot(3)
        fabric.node(2).crash()

        def writer():
            return (yield from swarm_write(fabric, ref, 0, 42))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.NEED_MASTER

    def test_primary_crash_needs_master(self):
        env, fabric, ref = make_slot(2)
        fabric.node(0).crash()

        def writer():
            return (yield from swarm_write(fabric, ref, 0, 42))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.NEED_MASTER

    def test_on_win_fires_once_after_commit(self):
        env, fabric, ref = make_slot(3)
        observed = []

        def hook(v_old):
            observed.append((v_old, slot_values(fabric, ref)))
            yield env.timeout(0.1)

        def writer():
            return (yield from swarm_write(fabric, ref, 0, 42, on_win=hook))

        result = env.run(until=env.process(writer()))
        assert result.rtts == 2  # broadcast + the hook's log commit
        assert observed == [(0, [42, 42, 42])]  # post-commit, not a barrier

    def test_on_win_not_called_for_losers(self):
        env, fabric, ref = make_slot(2)
        for mn in range(2):
            fabric.node(mn).write_word(0, 99)
        calls = []

        def hook(v_old):
            calls.append(v_old)
            yield env.timeout(0.1)

        def writer():
            return (yield from swarm_write(fabric, ref, 0, 42, on_win=hook))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.LOSE
        assert calls == []


class TestSwarmConcurrentWriters:
    @pytest.mark.parametrize("r,n_writers", [
        (2, 2), (3, 2), (3, 3), (3, 8), (5, 4),
    ])
    def test_exactly_one_winner_and_convergence(self, r, n_writers):
        env, fabric, ref = make_slot(r)
        results = {}

        def writer(wid):
            yield env.timeout(wid * 0.1)  # stagger so interleavings vary
            results[wid] = yield from swarm_write(fabric, ref, 0, 100 + wid)

        for wid in range(n_writers):
            env.process(writer(wid))
        env.run()
        winners = [wid for wid, res in results.items() if res.outcome.won]
        assert len(winners) == 1
        winner_value = 100 + winners[0]
        assert slot_values(fabric, ref) == [winner_value] * r
        for wid, res in results.items():
            if not res.outcome.won:
                assert res.outcome in (Outcome.LOSE, Outcome.NEED_MASTER)
                if res.outcome is Outcome.LOSE:
                    assert res.committed == winner_value

    def test_successive_rounds(self):
        env, fabric, ref = make_slot(3)
        committed = []

        def writer(round_no, wid):
            v_old = committed[round_no - 1] if round_no else 0
            return (yield from swarm_write(fabric, ref, v_old,
                                           1000 * (round_no + 1) + wid))

        for round_no in range(4):
            procs = [env.process(writer(round_no, wid)) for wid in range(3)]
            env.run(until=env.all_of(procs))
            values = set(slot_values(fabric, ref))
            assert len(values) == 1
            committed.append(values.pop())
        assert len(set(committed)) == 4

    def test_concurrent_history_linearizes(self):
        """Writers + validated readers on one slot; swarm losers return
        without waiting out the round, so a loser whose invocation
        postdates the winner's commit records a *pending* write (its
        value is transient-or-nothing) rather than a completed one."""
        env, fabric, ref = make_slot(3)
        history = History(initial_value=0)

        def writer(wid):
            yield env.timeout(wid * 0.3)
            invoked = env.now
            result = yield from swarm_write(fabric, ref, 0, 100 + wid)
            if result.outcome.won:
                history.record("w", 100 + wid, invoked, env.now)
            else:
                history.record_pending("w", 100 + wid, invoked)

        def reader(rid):
            yield env.timeout(rid * 0.45)
            invoked = env.now
            result = yield from swarm_read(fabric, ref, rotation=rid)
            if result.value is not None:
                history.record("r", result.value, invoked, env.now)

        for wid in range(4):
            env.process(writer(wid))
        for rid in range(4):
            env.process(reader(rid))
        env.run()
        assert check_linearizable(history)


# --------------------------------------------------------------------------
# SWARM read: validated-only returns, bounded re-read, degraded mode
# --------------------------------------------------------------------------
class TestSwarmRead:
    def test_single_replica_read(self):
        env, fabric, ref = make_slot(1)
        fabric.node(0).write_word(0, 5)

        def reader():
            return (yield from swarm_read(fabric, ref))

        result = env.run(until=env.process(reader()))
        assert result.value == 5
        assert result.validated
        assert result.rtts == 1

    def test_validated_read_is_one_rtt(self):
        env, fabric, ref = make_slot(3)
        for mn in range(3):
            fabric.node(mn).write_word(0, 9)

        def reader():
            return (yield from swarm_read(fabric, ref))

        result = env.run(until=env.process(reader()))
        assert result.value == 9
        assert result.validated
        assert result.rtts == 1
        assert not result.from_backups

    def test_unvalidated_word_never_returned(self):
        """The primary alone vouching for a word is not enough — a torn
        broadcast defers to the master instead of guessing."""
        env, fabric, ref = make_slot(3)
        fabric.node(0).write_word(0, 42)  # backups still hold 0

        def reader():
            return (yield from swarm_read(fabric, ref,
                                          max_validate_rounds=3))

        result = env.run(until=env.process(reader()))
        assert result.value is None
        assert result.rtts == 3  # bounded re-reads, then defer

    def test_reread_catches_converging_broadcast(self):
        env, fabric, ref = make_slot(2)
        fabric.node(0).write_word(0, 42)

        def lagging_cas():
            # the writer's backup CAS lands one hop behind
            yield env.timeout(2.0 * fabric.config.one_way_delay_us)
            fabric.node(1).write_word(0, 42)

        def reader():
            return (yield from swarm_read(fabric, ref,
                                          max_validate_rounds=4))

        env.process(lagging_cas())
        result = env.run(until=env.process(reader()))
        assert result.value == 42
        assert result.validated
        assert result.rtts >= 2  # first round was torn

    def test_reader_never_writes_back(self):
        """Readers must not repair slots: a reader CAS would race the
        writer's own broadcast and fixup."""
        env, fabric, ref = make_slot(3)
        fabric.node(0).write_word(0, 42)

        def reader():
            return (yield from swarm_read(fabric, ref,
                                          max_validate_rounds=2))

        env.run(until=env.process(reader()))
        assert slot_values(fabric, ref) == [42, 0, 0]  # untouched

    def test_degraded_unanimous_survivors(self):
        env, fabric, ref = make_slot(3)
        for mn in range(3):
            fabric.node(mn).write_word(0, 9)
        fabric.node(0).crash()

        def reader():
            return (yield from swarm_read(fabric, ref))

        result = env.run(until=env.process(reader()))
        assert result.value == 9
        assert result.from_backups

    def test_degraded_divergent_survivors_defer(self):
        env, fabric, ref = make_slot(3)
        fabric.node(1).write_word(0, 9)
        fabric.node(2).write_word(0, 11)
        fabric.node(0).crash()

        def reader():
            return (yield from swarm_read(fabric, ref))

        result = env.run(until=env.process(reader()))
        assert result.value is None

    def test_all_replicas_crashed_defer(self):
        env, fabric, ref = make_slot(2)
        fabric.node(0).crash()
        fabric.node(1).crash()

        def reader():
            return (yield from swarm_read(fabric, ref))

        result = env.run(until=env.process(reader()))
        assert result.value is None


# --------------------------------------------------------------------------
# Recovery: the per-protocol repair_choice hook
# --------------------------------------------------------------------------
class TestRepairChoice:
    def test_snapshot_prefers_first_backup(self):
        # backups are CASed before the primary install: never older than
        # the committed primary word
        assert SnapshotProtocol.repair_choice([5, 7, 7], True) == 1

    def test_snapshot_falls_back_to_lone_survivor(self):
        assert SnapshotProtocol.repair_choice([5], True) == 0
        assert SnapshotProtocol.repair_choice([5, 7], False) == 0

    def test_sequential_inherits_snapshot_choice(self):
        assert SequentialProtocol.repair_choice([5, 7, 7], True) == 1

    def test_swarm_prefers_surviving_primary(self):
        # the primary CAS is the commit point; backups may hold a loser's
        # never-committed debris
        assert SwarmProtocol.repair_choice([5, 7, 7], True) == 0

    def test_swarm_majority_without_primary(self):
        assert SwarmProtocol.repair_choice([5, 7, 7], False) == 1
        assert SwarmProtocol.repair_choice([7, 7, 5], False) == 0

    def test_swarm_tie_takes_first_index(self):
        assert SwarmProtocol.repair_choice([5, 7], False) == 0

    def test_swarm_single_survivor(self):
        assert SwarmProtocol.repair_choice([9], False) == 0
