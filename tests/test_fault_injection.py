"""Fault injection on the substrate paths: RPCs under mid-service crashes,
kernel error surfaces, and protocol behaviour under exotic failures."""

import pytest

from repro.rdma import FAIL, Fabric, FabricConfig, MemoryNode, ReadOp
from repro.sim import Environment, SimulationError


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def fabric(env):
    fab = Fabric(env, FabricConfig())
    for mn in range(2):
        node = MemoryNode(env, mn, capacity=1 << 12)
        fab.add_node(node)
    return fab


class TestRpcMidServiceCrash:
    def test_crash_during_cpu_service_fails_rpc(self, env, fabric):
        """The node dies while the handler is executing: FAIL, not a
        bogus reply."""
        node = fabric.node(0)
        node.register_rpc("slow", lambda p: ({"x": 1}, 50.0))

        def crasher():
            yield env.timeout(10.0)  # mid-service
            node.crash()

        def caller():
            return (yield fabric.rpc(0, "slow", {}))

        env.process(crasher())
        result = env.run(until=env.process(caller()))
        assert result is FAIL

    def test_crash_before_nic_receive_fails_rpc(self, env, fabric):
        node = fabric.node(0)
        node.register_rpc("fast", lambda p: ({}, 0.1))

        def crasher():
            yield env.timeout(0.5)  # during request propagation
            node.crash()

        def caller():
            return (yield fabric.rpc(0, "fast", {}))

        env.process(crasher())
        result = env.run(until=env.process(caller()))
        assert result is FAIL

    def test_rpc_after_recover_succeeds(self, env, fabric):
        node = fabric.node(0)
        node.register_rpc("echo", lambda p: ({"v": p["v"]}, 0.5))
        node.crash()
        node.recover()

        def caller():
            return (yield fabric.rpc(0, "echo", {"v": 9}))

        assert env.run(until=env.process(caller())) == {"v": 9}


class TestKernelErrorSurfaces:
    def test_run_until_unreachable_event_raises(self, env):
        never = env.event()
        env.timeout(1.0)
        with pytest.raises(SimulationError):
            env.run(until=never)

    def test_step_on_empty_queue_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_all_of_child_failure_propagates(self, env):
        bad = env.event()
        good = env.timeout(5.0)

        def trigger():
            yield env.timeout(1.0)
            bad.fail(RuntimeError("child died"))

        caught = []

        def waiter():
            try:
                yield env.all_of([good, bad])
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(trigger())
        env.process(waiter())
        env.run()
        assert caught == ["child died"]

    def test_any_of_child_failure_propagates(self, env):
        bad = env.event()

        def trigger():
            yield env.timeout(1.0)
            bad.fail(ValueError("nope"))

        caught = []

        def waiter():
            try:
                yield env.any_of([env.timeout(5.0), bad])
            except ValueError:
                caught.append(True)

        env.process(trigger())
        env.process(waiter())
        env.run()
        assert caught == [True]


class TestCrashTimingWindows:
    def test_crash_between_batches_is_seen_by_next_batch(self, env, fabric):
        results = []

        def client():
            comps = yield fabric.post([ReadOp(0, 0, 8)])
            results.append(comps[0].failed)
            fabric.node(0).crash()
            comps = yield fabric.post([ReadOp(0, 0, 8)])
            results.append(comps[0].failed)

        env.run(until=env.process(client()))
        assert results == [False, True]

    def test_memory_unmodified_after_crash_flag(self, env, fabric):
        """A crashed node's memory is frozen — recovery logic can rely on
        the pre-crash contents when the node 'returns' in tests."""
        from repro.rdma import WriteOp
        node = fabric.node(0)

        def client():
            yield fabric.post([WriteOp(0, 0, b"live")])
            node.crash()
            yield fabric.post([WriteOp(0, 0, b"dead")])

        env.run(until=env.process(client()))
        assert bytes(node.memory[0:4]) == b"live"


class TestSequentialWriteRollback:
    def test_loser_rolls_back_partial_cas(self):
        """FUSEE-CR: a writer that wins some backups but loses a later one
        undoes its partial modifications before reporting LOSE."""
        from repro.core.race import SlotRef
        from repro.core.snapshot import Outcome, sequential_write
        env = Environment()
        fabric = Fabric(env, FabricConfig())
        for mn in range(3):
            fabric.add_node(MemoryNode(env, mn, capacity=64))
        ref = SlotRef(subtable=0, slot_index=0,
                      placement=((0, 0), (1, 0), (2, 0)))
        # sabotage: backup 2 already holds a foreign value, so the second
        # backup CAS will fail after the first succeeded
        fabric.node(2).write_word(0, 77)

        def writer():
            return (yield from sequential_write(fabric, ref, 0, 42))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.LOSE
        # the partially-modified backup was rolled back
        assert fabric.node(1).read_word(0) == 0
        assert fabric.node(0).read_word(0) == 0
