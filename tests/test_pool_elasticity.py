"""Runtime memory-pool growth: add_memory_node."""

import pytest

from repro.core import FuseeCluster
from tests.conftest import small_config, run


@pytest.fixture
def cluster():
    return FuseeCluster(small_config())


class TestAddMemoryNode:
    def test_node_joins_fabric_and_ring(self, cluster):
        before = set(cluster.fabric.nodes)
        mn_id = cluster.add_memory_node()
        assert mn_id not in before
        assert mn_id in cluster.fabric.nodes
        assert mn_id in cluster.ring.nodes

    def test_existing_data_untouched(self, cluster):
        client = cluster.new_client()
        for i in range(40):
            run(cluster, client.insert(f"pre-{i}".encode(), b"v"))
        cluster.add_memory_node()
        reader = cluster.new_client()
        for i in range(40):
            assert run(cluster, reader.search(f"pre-{i}".encode())).value \
                == b"v"

    def test_new_regions_primary_on_new_node(self, cluster):
        before = set(cluster.region_map.region_ids)
        mn_id = cluster.add_memory_node(regions=3)
        new_regions = set(cluster.region_map.region_ids) - before
        assert len(new_regions) == 3
        assert set(cluster.region_map.primary_regions_of(mn_id)) \
            == new_regions
        for rid in new_regions:
            placement = cluster.region_map.placement(rid)
            assert placement[0][0] == mn_id
            assert len(placement) == cluster.config.replication_factor
            assert len({mn for mn, _ in placement}) == len(placement)

    def test_new_node_serves_allocations(self, cluster):
        mn_id = cluster.add_memory_node(regions=2)
        client = cluster.new_client()
        # round-robin refills eventually hit the new node
        hit = False
        for i in range(200):
            assert run(cluster, client.insert(f"post-{i}".encode(),
                                              b"x" * 100)).ok
            if any(cluster.region_map.placement(r)[0][0] == mn_id
                   for r, _b, _c in client.allocator.owned_blocks()):
                hit = True
                break
        assert hit, "new node never served a block"

    def test_client_table_replicated_to_new_node(self, cluster):
        client = cluster.new_client()
        run(cluster, client.insert(b"seed", b"v"))  # publishes a head
        mn_id = cluster.add_memory_node()
        table_bytes = cluster.client_table.table_bytes(
            cluster.config.max_clients, len(cluster.size_classes))
        old_mn, old_base = next(iter(
            (m, b) for m, b in cluster.client_table.bases.items()
            if m != mn_id))
        new_base = cluster.client_table.bases[mn_id]
        assert cluster.fabric.node(mn_id).memory[
            new_base:new_base + table_bytes] == \
            cluster.fabric.node(old_mn).memory[
                old_base:old_base + table_bytes]

    def test_recovery_works_after_growth(self, cluster):
        from repro.core.client import ClientCrashed, CrashPoint
        client = cluster.new_client()
        run(cluster, client.insert(b"k", b"v"))
        cluster.add_memory_node()
        client.arm_crash(CrashPoint.C1)
        with pytest.raises(ClientCrashed):
            run(cluster, client.update(b"k", b"w"))

        def proc():
            return (yield from cluster.master.recover_client(client.cid))

        run(cluster, proc())
        reader = cluster.new_client()
        assert run(cluster, reader.search(b"k")).value == b"w"

    def test_new_node_crash_handled(self, cluster):
        client = cluster.new_client()
        mn_id = cluster.add_memory_node(regions=2)
        for i in range(30):
            run(cluster, client.insert(f"g-{i}".encode(), b"v"))
        cluster.crash_memory_node(mn_id)
        cluster.run(until=cluster.env.now
                    + cluster.config.master.lease_us * 4)
        reader = cluster.new_client()
        for i in range(30):
            assert run(cluster, reader.search(f"g-{i}".encode())).ok
