"""Unit tests for Resource and NicPort queueing primitives."""

import pytest

from repro.sim import Environment, NicPort, NicProfile, Resource


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_under_capacity(self, env):
        res = Resource(env, capacity=2)
        assert res.request().triggered
        assert res.request().triggered
        assert res.in_use == 2

    def test_queueing_over_capacity(self, env):
        res = Resource(env, capacity=1)
        first = res.request()
        second = res.request()
        assert first.triggered
        assert not second.triggered
        assert res.queue_length == 1
        first.release()
        assert second.triggered
        assert res.queue_length == 0

    def test_fifo_order(self, env):
        res = Resource(env, capacity=1)
        order = []

        def worker(tag, hold):
            req = res.request()
            yield req
            order.append(tag)
            yield env.timeout(hold)
            req.release()

        for tag in ("a", "b", "c"):
            env.process(worker(tag, 1.0))
        env.run()
        assert order == ["a", "b", "c"]

    def test_release_without_request_raises(self, env):
        res = Resource(env, capacity=1)
        req = res.request()
        res.release(req)
        with pytest.raises(RuntimeError):
            res.release(req)

    def test_serialisation_time(self, env):
        """Three 2us jobs on one core finish at 2, 4, 6."""
        res = Resource(env, capacity=1)
        finishes = []

        def worker():
            req = res.request()
            yield req
            yield env.timeout(2.0)
            req.release()
            finishes.append(env.now)

        for _ in range(3):
            env.process(worker())
        env.run()
        assert finishes == [2.0, 4.0, 6.0]

    def test_parallelism_with_two_cores(self, env):
        res = Resource(env, capacity=2)
        finishes = []

        def worker():
            req = res.request()
            yield req
            yield env.timeout(2.0)
            req.release()
            finishes.append(env.now)

        for _ in range(4):
            env.process(worker())
        env.run()
        assert finishes == [2.0, 2.0, 4.0, 4.0]


class TestNicProfile:
    def test_byte_time_56gbps(self):
        profile = NicProfile(bandwidth_gbps=56.0)
        # 7000 bytes at 7000 bytes/us = 1 us
        assert profile.byte_time(7000) == pytest.approx(1.0)

    def test_byte_time_zero(self):
        assert NicProfile().byte_time(0) == 0.0

    def test_atomic_slower_than_read(self):
        profile = NicProfile()
        assert profile.atomic_overhead > profile.op_overhead


class TestNicPort:
    def test_idle_port_serves_immediately(self, env):
        port = NicPort(env, NicProfile())
        done = port.finish_time(0.5)
        assert done == pytest.approx(0.5)

    def test_back_to_back_ops_serialize(self, env):
        port = NicPort(env, NicProfile())
        t1 = port.finish_time(1.0)
        t2 = port.finish_time(1.0)
        assert (t1, t2) == (1.0, 2.0)

    def test_not_before_delays_start(self, env):
        port = NicPort(env, NicProfile())
        done = port.finish_time(1.0, not_before=5.0)
        assert done == pytest.approx(6.0)

    def test_not_before_queues_behind_busy_port(self, env):
        port = NicPort(env, NicProfile())
        port.finish_time(10.0)
        done = port.finish_time(1.0, not_before=2.0)
        assert done == pytest.approx(11.0)

    def test_occupy_event_fires_at_completion(self, env):
        port = NicPort(env, NicProfile())
        seen = []

        def proc():
            yield port.occupy(3.0)
            seen.append(env.now)

        env.process(proc())
        env.run()
        assert seen == [3.0]

    def test_utilisation(self, env):
        port = NicPort(env, NicProfile())
        port.finish_time(2.0)
        assert port.utilisation(4.0) == pytest.approx(0.5)
        assert port.utilisation(1.0) == 1.0
        assert port.utilisation(0.0) == 0.0

    def test_ops_counter(self, env):
        port = NicPort(env, NicProfile())
        port.finish_time(1.0)
        port.occupy(1.0)
        assert port.ops == 2
