"""Tests for the closed-loop runner, latency driver, and system beds."""

import pytest

from repro.harness import (
    Scale,
    cdf_points,
    clover_bed,
    fusee_bed,
    pdpm_bed,
    percentile,
    run_closed_loop,
    run_latency,
)
from repro.harness.runner import StopLoop
from repro.sim import Environment
from repro.workloads import MicroConfig, MicroWorkload
from repro.workloads.ycsb import key_bytes, make_value


def tiny_dataset(n=100, value_size=100):
    return [(key_bytes(i), make_value(value_size, salt=i)) for i in range(n)]


class TestPercentiles:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5

    def test_extremes(self):
        values = list(range(100))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 99

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_cdf_points(self):
        points = cdf_points(list(range(1000)), (50, 99))
        assert 490 < points[50] < 510
        assert points[99] > 980


class _FixedWorkload:
    """Deterministic single-op workload for runner tests."""

    def __init__(self, op="search", key=None, value=None):
        self._op = (op, key if key is not None else key_bytes(0), value)

    def next_op(self):
        return self._op


class TestRunner:
    def make_bed(self):
        bed = fusee_bed(dataset_bytes=1 << 20, background_interval_us=0)
        bed.load(tiny_dataset())
        return bed

    def test_throughput_positive(self):
        bed = self.make_bed()
        clients = [bed.new_client() for _ in range(4)]
        result = run_closed_loop(bed.env, clients,
                                 lambda i: _FixedWorkload(key=key_bytes(i)),
                                 bed.execute, duration_us=300.0)
        assert result.ops > 0
        assert result.mops > 0
        assert result.errors == 0

    def test_warmup_excluded(self):
        bed = self.make_bed()
        clients = [bed.new_client()]
        full = run_closed_loop(bed.env, clients,
                               lambda i: _FixedWorkload(),
                               bed.execute, duration_us=300.0)
        bed2 = self.make_bed()
        clients2 = [bed2.new_client()]
        warm = run_closed_loop(bed2.env, clients2,
                               lambda i: _FixedWorkload(),
                               bed2.execute, duration_us=300.0,
                               warmup_us=150.0)
        assert warm.ops < full.ops

    def test_latency_collection(self):
        bed = self.make_bed()
        clients = [bed.new_client()]
        result = run_closed_loop(bed.env, clients,
                                 lambda i: _FixedWorkload(),
                                 bed.execute, duration_us=200.0,
                                 collect_latency=True)
        assert "search" in result.latencies
        assert all(lat > 0 for lat in result.latencies["search"])

    def test_failed_ops_counted_as_errors(self):
        bed = self.make_bed()
        clients = [bed.new_client()]
        result = run_closed_loop(
            bed.env, clients,
            lambda i: _FixedWorkload(key=b"missing-key"),
            bed.execute, duration_us=200.0)
        assert result.ops == 0
        assert result.errors > 0

    def test_timeline_buckets(self):
        bed = self.make_bed()
        clients = [bed.new_client() for _ in range(2)]
        result = run_closed_loop(bed.env, clients,
                                 lambda i: _FixedWorkload(),
                                 bed.execute, duration_us=400.0,
                                 timeline_bucket_us=100.0)
        assert len(result.timeline) == 4
        assert all(mops >= 0 for _t, mops in result.timeline)

    def test_events_fire(self):
        bed = self.make_bed()
        fired = []
        clients = [bed.new_client()]
        run_closed_loop(bed.env, clients, lambda i: _FixedWorkload(),
                        bed.execute, duration_us=200.0,
                        events=[(50.0, lambda: fired.append(bed.env.now))])
        assert len(fired) == 1

    def test_event_can_add_clients(self):
        bed = self.make_bed()
        clients = [bed.new_client()]

        def add():
            return [(bed.new_client(), _FixedWorkload())]

        result = run_closed_loop(bed.env, clients,
                                 lambda i: _FixedWorkload(),
                                 bed.execute, duration_us=400.0,
                                 timeline_bucket_us=100.0,
                                 events=[(200.0, add)])
        first_half = sum(m for t, m in result.timeline if t < 200.0)
        second_half = sum(m for t, m in result.timeline if t >= 200.0)
        assert second_half > first_half

    def test_stoploop_retires_client(self):
        bed = self.make_bed()
        clients = [bed.new_client()]
        calls = []

        def execute(client, op, key, value):
            calls.append(bed.env.now)
            if len(calls) >= 5:
                raise StopLoop()
            return (yield from bed.execute(client, op, key, value))

        result = run_closed_loop(bed.env, clients,
                                 lambda i: _FixedWorkload(),
                                 execute, duration_us=1000.0)
        assert len(calls) == 5

    def test_run_latency_sequential(self):
        bed = self.make_bed()
        client = bed.new_client()
        ops = [("search", key_bytes(i % 100), None) for i in range(20)]
        latencies = run_latency(bed.env, client, bed.execute, ops)
        assert len(latencies) == 20
        assert all(lat > 0 for lat in latencies)


class TestBeds:
    def test_fusee_bed_variants(self):
        for variant in ("fusee", "fusee-cr", "fusee-nc"):
            bed = fusee_bed(dataset_bytes=1 << 20, variant=variant,
                            background_interval_us=0)
            bed.load(tiny_dataset(20))
            client = bed.new_client()

            def proc():
                return (yield from bed.execute(client, "search",
                                               key_bytes(3), None))

            assert bed.env.run(until=bed.env.process(proc()))

    def test_fusee_nc_has_no_cache(self):
        bed = fusee_bed(dataset_bytes=1 << 20, variant="fusee-nc",
                        background_interval_us=0)
        client = bed.new_client()
        assert not client.cache.enabled

    def test_fusee_cr_is_sequential(self):
        bed = fusee_bed(dataset_bytes=1 << 20, variant="fusee-cr",
                        background_interval_us=0)
        client = bed.new_client()
        assert client.config.replication_mode == "sequential"

    def test_clover_bed(self):
        bed = clover_bed(dataset_bytes=1 << 20)
        bed.load(tiny_dataset(20))
        client = bed.new_client()

        def proc():
            return (yield from bed.execute(client, "search", key_bytes(3),
                                           None))

        assert bed.env.run(until=bed.env.process(proc()))

    def test_pdpm_bed(self):
        bed = pdpm_bed(dataset_bytes=1 << 20, n_keys_hint=100)
        bed.load(tiny_dataset(20))
        client = bed.new_client()

        def proc():
            return (yield from bed.execute(client, "update", key_bytes(3),
                                           b"new"))

        assert bed.env.run(until=bed.env.process(proc()))

    def test_unknown_op_rejected(self):
        bed = fusee_bed(dataset_bytes=1 << 20, background_interval_us=0)
        client = bed.new_client()

        def proc():
            return (yield from bed.execute(client, "upsert", b"k", b"v"))

        with pytest.raises(ValueError):
            bed.env.run(until=bed.env.process(proc()))


class TestScale:
    def test_presets_ordered(self):
        tiny, bench, full = Scale.tiny(), Scale.bench(), Scale.full()
        assert tiny.n_keys < bench.n_keys < full.n_keys
        assert tiny.n_clients < bench.n_clients < full.n_clients
