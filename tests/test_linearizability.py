"""Tests for the linearizability checker itself (known histories)."""

import pytest

from repro.core.linearizability import History, Op, check_linearizable


def history(initial=0, *ops):
    h = History(initial_value=initial)
    for kind, value, inv, resp in ops:
        h.record(kind, value, inv, resp)
    return h


class TestOpValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Op("x", 1, 0, 1)

    def test_resp_before_inv_rejected(self):
        with pytest.raises(ValueError):
            Op("r", 1, 5, 4)


class TestTrivial:
    def test_empty_history(self):
        assert check_linearizable(History())

    def test_single_read_of_initial(self):
        assert check_linearizable(history(0, ("r", 0, 0, 1)))

    def test_single_read_of_wrong_initial(self):
        assert not check_linearizable(history(0, ("r", 5, 0, 1)))

    def test_write_then_read(self):
        assert check_linearizable(history(
            0, ("w", 7, 0, 1), ("r", 7, 2, 3)))

    def test_read_of_never_written_value(self):
        assert not check_linearizable(history(
            0, ("w", 7, 0, 1), ("r", 9, 2, 3)))


class TestRealTimeOrder:
    def test_stale_read_after_write_completes(self):
        """A read strictly after a write cannot return the old value."""
        assert not check_linearizable(history(
            0, ("w", 7, 0, 1), ("r", 0, 2, 3)))

    def test_concurrent_read_may_return_old_value(self):
        assert check_linearizable(history(
            0, ("w", 7, 0, 10), ("r", 0, 1, 2)))

    def test_concurrent_read_may_return_new_value(self):
        assert check_linearizable(history(
            0, ("w", 7, 0, 10), ("r", 7, 1, 2)))

    def test_two_sequential_writes_order(self):
        assert not check_linearizable(history(
            0, ("w", 1, 0, 1), ("w", 2, 2, 3), ("r", 1, 4, 5)))

    def test_concurrent_writes_any_order(self):
        assert check_linearizable(history(
            0, ("w", 1, 0, 10), ("w", 2, 0, 10), ("r", 1, 11, 12)))
        assert check_linearizable(history(
            0, ("w", 1, 0, 10), ("w", 2, 0, 10), ("r", 2, 11, 12)))

    def test_reads_must_agree_on_write_order(self):
        """Two sequential reads seeing w2-then-w1 is not linearizable."""
        assert not check_linearizable(history(
            0,
            ("w", 1, 0, 10), ("w", 2, 0, 10),
            ("r", 2, 11, 12), ("r", 1, 13, 14)))

    def test_reads_after_both_writes_agree_on_final_value(self):
        assert check_linearizable(history(
            0,
            ("w", 1, 0, 10), ("w", 2, 0, 10),
            ("r", 2, 11, 12), ("r", 2, 13, 14)))

    def test_read_concurrent_with_second_write_may_differ(self):
        """r1 overlaps w2, so it may see w1's value while r2 sees w2's."""
        assert check_linearizable(history(
            0,
            ("w", 1, 0, 10), ("w", 2, 0, 20),
            ("r", 1, 11, 12), ("r", 2, 21, 22)))


class TestNonTrivialCases:
    def test_classic_nonlinearizable_triangle(self):
        # w(1) completes; then read sees initial value again.
        assert not check_linearizable(history(
            5, ("w", 1, 0, 2), ("r", 1, 3, 4), ("r", 5, 5, 6)))

    def test_interleaved_ok(self):
        assert check_linearizable(history(
            0,
            ("w", 1, 0, 4),
            ("r", 0, 1, 2),   # linearizes before w1
            ("r", 1, 3, 6),
            ("w", 2, 5, 8),
            ("r", 2, 9, 10)))

    def test_large_history_performance(self):
        ops = []
        t = 0.0
        value = 0
        for i in range(1, 21):
            ops.append(("w", i, t, t + 1))
            ops.append(("r", i, t + 2, t + 3))
            t += 4
        assert check_linearizable(history(0, *ops))

    def test_oversized_history_rejected(self):
        h = History()
        for i in range(64):
            h.record("w", i, i, i + 0.5)
        with pytest.raises(ValueError):
            check_linearizable(h)


# --------------------------------------------------------------------------
# KV checker: quiescent-cut decomposition of long paced histories
# --------------------------------------------------------------------------
from repro.core.linearizability import KvOp, check_kv_linearizable


class TestQuiescentCutDecomposition:
    """Production traffic scenarios put thousands of paced ops on a hot
    key.  The per-key search decomposes at quiescent cuts (no op in
    flight), so the bitmask cap applies to genuine concurrent bursts,
    not run length — and the set of legally reachable states is
    threaded across each cut."""

    def _sequential(self, n):
        ops, t = [], 0.0
        for i in range(n):
            val = f"v{i}".encode()
            ops.append(KvOp("update", b"k", t, t + 1.0, ok=True,
                            wrote=val))
            ops.append(KvOp("search", b"k", t + 2.0, t + 3.0, ok=True,
                            value=val))
            t += 4.0
        return ops

    def test_long_sequential_history_checks_linearizable(self):
        # 200 ops on one key: far beyond the 63-op burst cap.
        ops = self._sequential(100)
        assert check_kv_linearizable(ops, initial={b"k": b"x"}) is None

    def test_stale_read_caught_across_a_cut(self):
        ops = self._sequential(100)
        t = ops[-1].completed + 10.0
        ops.append(KvOp("search", b"k", t, t + 1.0, ok=True,
                        value=b"v1"))
        violation = check_kv_linearizable(ops, initial={b"k": b"x"})
        assert violation is not None and violation.key == b"k"

    def test_ambiguous_burst_state_threads_across_the_cut(self):
        # Two concurrent updates; a later sequential read may observe
        # either winner — both end states must survive the cut.
        for observed in (b"a", b"b"):
            ops = [
                KvOp("update", b"k", 0.0, 10.0, ok=True, wrote=b"a"),
                KvOp("update", b"k", 0.0, 10.0, ok=True, wrote=b"b"),
                KvOp("search", b"k", 20.0, 21.0, ok=True,
                     value=observed),
            ]
            assert check_kv_linearizable(
                ops, initial={b"k": b"x"}) is None

    def test_overwritten_initial_value_is_not_readable_after_cut(self):
        ops = [
            KvOp("update", b"k", 0.0, 10.0, ok=True, wrote=b"a"),
            KvOp("update", b"k", 0.0, 10.0, ok=True, wrote=b"b"),
            KvOp("search", b"k", 20.0, 21.0, ok=True, value=b"x"),
        ]
        assert check_kv_linearizable(ops, initial={b"k": b"x"}) \
            is not None

    def test_oversized_concurrent_burst_still_rejected(self):
        # 64 genuinely overlapping ops: no cut exists, the cap trips.
        ops = [KvOp("update", b"k", 0.0, 100.0, ok=True,
                    wrote=f"v{i}".encode()) for i in range(64)]
        with pytest.raises(ValueError):
            check_kv_linearizable(ops)

    def test_pending_op_glues_its_tail_into_one_burst(self):
        # A pending update may land anywhere after invocation (or
        # never): a later read of either value is legal.
        for observed in (b"old", b"new"):
            ops = [
                KvOp("insert", b"k", 0.0, 1.0, ok=True, wrote=b"old"),
                KvOp("update", b"k", 5.0, float("inf"), wrote=b"new",
                     required=False),
                KvOp("search", b"k", 50.0, 51.0, ok=True,
                     value=observed),
            ]
            assert check_kv_linearizable(ops) is None
