"""Shared fixtures: small FUSEE clusters sized for fast tests."""

import pytest

from repro.core import ClusterConfig, FuseeCluster
from repro.core.addressing import RegionConfig
from repro.core.race import RaceConfig


def small_config(**overrides) -> ClusterConfig:
    """A cluster small enough for unit tests but fully featured."""
    defaults = dict(
        n_memory_nodes=3,
        replication_factor=2,
        regions_per_mn=2,
        max_clients=32,
        region=RegionConfig(region_size=1 << 18, block_size=1 << 13,
                            min_object_size=64),
        race=RaceConfig(n_subtables=4, n_groups=16, slots_per_bucket=7),
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


@pytest.fixture
def cluster():
    return FuseeCluster(small_config())


@pytest.fixture
def client(cluster):
    return cluster.new_client()


def run(cluster, generator):
    """Drive a client operation generator to completion."""
    return cluster.run_op(generator)
