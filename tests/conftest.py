"""Shared fixtures: small FUSEE clusters sized for fast tests.

Also pins the Hypothesis profile for the whole suite.  CI runs must not
flake on a slow runner or an unlucky draw, so the default ``ci`` profile
is derandomized (the seed is fixed per test body) and has no deadline;
``HYPOTHESIS_PROFILE=dev`` restores randomized exploration for local
bug-hunting sessions.
"""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core import ClusterConfig, FuseeCluster
from repro.core.addressing import RegionConfig
from repro.core.race import RaceConfig

settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


def small_config(**overrides) -> ClusterConfig:
    """A cluster small enough for unit tests but fully featured."""
    defaults = dict(
        n_memory_nodes=3,
        replication_factor=2,
        regions_per_mn=2,
        max_clients=32,
        region=RegionConfig(region_size=1 << 18, block_size=1 << 13,
                            min_object_size=64),
        race=RaceConfig(n_subtables=4, n_groups=16, slots_per_bucket=7),
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


@pytest.fixture
def cluster():
    return FuseeCluster(small_config())


@pytest.fixture
def client(cluster):
    return cluster.new_client()


def run(cluster, generator):
    """Drive a client operation generator to completion."""
    return cluster.run_op(generator)
