"""The fast loaders must be indistinguishable from protocol-driven loads."""

import pytest

from repro.baselines import CloverCluster, CloverConfig, PdpmCluster, PdpmConfig
from repro.core import FuseeCluster
from repro.harness.loader import clover_load, fusee_load, pdpm_load
from tests.conftest import small_config, run


@pytest.fixture
def cluster():
    return FuseeCluster(small_config())


class TestFuseeLoad:
    def test_loaded_keys_searchable(self, cluster):
        loader = cluster.new_client()
        items = [(f"key-{i}".encode(), f"value-{i}".encode())
                 for i in range(100)]
        assert fusee_load(cluster, loader, items) == 100
        reader = cluster.new_client()
        for key, value in items:
            result = run(cluster, reader.search(key))
            assert result.ok and result.value == value

    def test_loaded_keys_updatable(self, cluster):
        loader = cluster.new_client()
        fusee_load(cluster, loader, [(b"k", b"v")])
        client = cluster.new_client()
        assert run(cluster, client.update(b"k", b"w")).ok
        assert run(cluster, client.search(b"k")).value == b"w"

    def test_loaded_keys_deletable(self, cluster):
        loader = cluster.new_client()
        fusee_load(cluster, loader, [(b"k", b"v")])
        client = cluster.new_client()
        assert run(cluster, client.delete(b"k")).ok
        assert not run(cluster, client.search(b"k")).ok

    def test_duplicate_insert_detected_after_load(self, cluster):
        loader = cluster.new_client()
        fusee_load(cluster, loader, [(b"k", b"v")])
        client = cluster.new_client()
        result = run(cluster, client.insert(b"k", b"w"))
        assert not result.ok and result.existed

    def test_load_matches_protocol_insert_bytes(self, cluster):
        """A loaded object and a protocol-inserted object of the same pair
        decode identically (header, payload, trailing used bit)."""
        from repro.core.wire import decode_kv_payload, unpack_slot
        loader = cluster.new_client()
        fusee_load(cluster, loader, [(b"same-key", b"same-value")])
        client = cluster.new_client()
        run(cluster, client.insert(b"other-key", b"same-value"))

        def image_for(reader_client, key):
            result = run(cluster, reader_client.search(key))
            assert result.ok
            entry = reader_client.cache.peek(key)
            slot = unpack_slot(entry.slot_word)
            mn, addr = cluster.region_map.translate(slot.pointer)[0]
            return bytes(cluster.fabric.node(mn).memory[
                addr:addr + slot.block_bytes])

        loaded = image_for(client, b"same-key")
        inserted = image_for(client, b"other-key")
        _h1, _k1, v1 = decode_kv_payload(loaded)
        _h2, _k2, v2 = decode_kv_payload(inserted)
        assert v1 == v2

    def test_load_registers_block_ownership(self, cluster):
        loader = cluster.new_client()
        items = [(f"key-{i}".encode(), b"x" * 200) for i in range(50)]
        fusee_load(cluster, loader, items)
        found = []

        def proc():
            for mn_id in cluster.fabric.nodes:
                reply = yield cluster.fabric.rpc(
                    mn_id, "find_client_blocks", {"cid": loader.cid})
                found.extend(reply["blocks"])

        run(cluster, proc())
        assert len(found) >= 1

    def test_recovery_after_load_and_crash(self, cluster):
        """Loaded state composes with the crash-recovery machinery."""
        from repro.core.client import ClientCrashed, CrashPoint
        loader = cluster.new_client()
        fusee_load(cluster, loader,
                   [(f"key-{i}".encode(), b"v") for i in range(20)])
        loader.arm_crash(CrashPoint.C1)
        with pytest.raises(ClientCrashed):
            run(cluster, loader.update(b"key-3", b"crashed"))

        def proc():
            return (yield from cluster.master.recover_client(loader.cid))

        run(cluster, proc())
        reader = cluster.new_client()
        assert run(cluster, reader.search(b"key-3")).value == b"crashed"


class TestCloverLoad:
    def test_loaded_keys_searchable(self):
        cluster = CloverCluster(CloverConfig())
        items = [(f"key-{i}".encode(), f"v-{i}".encode()) for i in range(50)]
        assert clover_load(cluster, items) == 50
        client = cluster.new_client()
        for key, value in items:
            assert cluster.run_op(client.search(key)) == value

    def test_loaded_keys_updatable(self):
        cluster = CloverCluster(CloverConfig())
        clover_load(cluster, [(b"k", b"v")])
        client = cluster.new_client()
        assert cluster.run_op(client.update(b"k", b"w"))
        assert cluster.run_op(client.search(b"k")) == b"w"


class TestPdpmLoad:
    def test_loaded_keys_searchable(self):
        cluster = PdpmCluster(PdpmConfig())
        items = [(f"key-{i}".encode(), f"v-{i}".encode()) for i in range(50)]
        assert pdpm_load(cluster, items) == 50
        client = cluster.new_client()
        for key, value in items:
            assert cluster.run_op(client.search(key)) == value

    def test_loaded_keys_updatable_and_deletable(self):
        cluster = PdpmCluster(PdpmConfig())
        pdpm_load(cluster, [(b"k", b"v")])
        client = cluster.new_client()
        assert cluster.run_op(client.update(b"k", b"w"))
        assert cluster.run_op(client.search(b"k")) == b"w"
        assert cluster.run_op(client.delete(b"k"))
        assert cluster.run_op(client.search(b"k")) is None
