"""Tests for the simulated RDMA fabric and memory nodes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdma import (
    FAIL,
    PORT_AFFINITY_MODES,
    CasOp,
    Fabric,
    FabricConfig,
    FaaOp,
    MemoryNode,
    QpFabric,
    ReadOp,
    WriteOp,
)
from repro.sim import Environment, NicProfile


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def fabric(env):
    fab = Fabric(env, FabricConfig())
    for mn_id in range(2):
        fab.add_node(MemoryNode(env, mn_id, capacity=1 << 20))
    return fab


def run_batch(env, fabric, ops, qp=0):
    """Post a batch and run the simulation until it completes."""
    def proc():
        return (yield fabric.post(ops, qp=qp))
    return env.run(until=env.process(proc()))


class TestMemoryNode:
    def test_memory_starts_zeroed(self, env):
        node = MemoryNode(env, 0, capacity=128)
        assert node.memory == bytearray(128)

    def test_carve_is_aligned(self, env):
        node = MemoryNode(env, 0, capacity=1024)
        node.carve(3)
        second = node.carve(8)
        assert second % 8 == 0

    def test_carve_overflow_raises(self, env):
        node = MemoryNode(env, 0, capacity=16)
        with pytest.raises(MemoryError):
            node.carve(32)

    def test_word_helpers_roundtrip(self, env):
        node = MemoryNode(env, 0, capacity=64)
        node.write_word(8, 0xDEADBEEF)
        assert node.read_word(8) == 0xDEADBEEF

    def test_out_of_range_access_raises(self, env):
        node = MemoryNode(env, 0, capacity=16)
        with pytest.raises(IndexError):
            node.apply(ReadOp(0, 8, 16))

    def test_duplicate_node_id_rejected(self, env, fabric):
        with pytest.raises(ValueError):
            fabric.add_node(MemoryNode(env, 0, capacity=64))


class TestVerbSemantics:
    def test_write_then_read(self, env, fabric):
        comps = run_batch(env, fabric, [WriteOp(0, 16, b"hello")])
        assert comps[0].value is None
        comps = run_batch(env, fabric, [ReadOp(0, 16, 5)])
        assert comps[0].value == b"hello"

    def test_cas_success(self, env, fabric):
        fabric.node(0).write_word(8, 100)
        comps = run_batch(env, fabric, [CasOp(0, 8, expected=100, swap=200)])
        assert comps[0].value == 100
        assert comps[0].cas_succeeded()
        assert fabric.node(0).read_word(8) == 200

    def test_cas_failure_leaves_memory(self, env, fabric):
        fabric.node(0).write_word(8, 100)
        comps = run_batch(env, fabric, [CasOp(0, 8, expected=999, swap=200)])
        assert comps[0].value == 100
        assert not comps[0].cas_succeeded()
        assert fabric.node(0).read_word(8) == 100

    def test_cas_succeeded_on_read_raises(self, env, fabric):
        comps = run_batch(env, fabric, [ReadOp(0, 0, 8)])
        with pytest.raises(TypeError):
            comps[0].cas_succeeded()

    def test_faa_returns_old_and_adds(self, env, fabric):
        fabric.node(0).write_word(8, 5)
        comps = run_batch(env, fabric, [FaaOp(0, 8, delta=3)])
        assert comps[0].value == 5
        assert fabric.node(0).read_word(8) == 8

    def test_faa_wraps_at_64_bits(self, env, fabric):
        fabric.node(0).write_word(8, (1 << 64) - 1)
        run_batch(env, fabric, [FaaOp(0, 8, delta=1)])
        assert fabric.node(0).read_word(8) == 0

    def test_writes_in_batch_apply_in_order(self, env, fabric):
        """RDMA_WRITE is order-preserving (used by the used-bit scheme)."""
        comps = run_batch(env, fabric, [
            WriteOp(0, 0, b"\xaa" * 8),
            WriteOp(0, 4, b"\xbb" * 8),
        ])
        assert len(comps) == 2
        assert bytes(fabric.node(0).memory[0:12]) == b"\xaa" * 4 + b"\xbb" * 8

    def test_concurrent_cas_only_one_wins(self, env, fabric):
        """Two clients CAS the same word with the same expected value."""
        results = []

        def client(swap):
            comps = yield fabric.post([CasOp(0, 8, expected=0, swap=swap)])
            results.append((swap, comps[0].cas_succeeded()))

        env.process(client(111))
        env.process(client(222))
        env.run()
        winners = [swap for swap, ok in results if ok]
        assert len(winners) == 1
        assert fabric.node(0).read_word(8) == winners[0]


class TestTiming:
    def test_single_read_takes_about_one_rtt(self, env, fabric):
        start = env.now
        run_batch(env, fabric, [ReadOp(0, 0, 8)])
        latency = env.now - start
        cfg = fabric.config
        assert latency >= 2 * cfg.one_way_delay_us
        assert latency < 2 * cfg.one_way_delay_us + 1.0

    def test_batch_to_two_nodes_is_one_rtt(self, env, fabric):
        """Doorbell batching: parallel verbs to different MNs cost ~1 RTT."""
        start = env.now
        run_batch(env, fabric, [ReadOp(0, 0, 8), ReadOp(1, 0, 8)])
        one_batch = env.now - start

        start = env.now
        run_batch(env, fabric, [ReadOp(0, 0, 8)])
        run_batch(env, fabric, [ReadOp(1, 0, 8)])
        two_rounds = env.now - start
        assert one_batch < two_rounds * 0.75

    def test_large_payload_takes_longer(self, env, fabric):
        start = env.now
        run_batch(env, fabric, [ReadOp(0, 0, 8)])
        small = env.now - start
        start = env.now
        run_batch(env, fabric, [ReadOp(0, 0, 65536)])
        large = env.now - start
        assert large > small

    def test_nic_saturates_under_load(self, env, fabric):
        """Many concurrent clients drive per-op latency up via queueing."""
        latencies = []

        def client():
            start = env.now
            yield fabric.post([ReadOp(0, 0, 4096)])
            latencies.append(env.now - start)

        for _ in range(64):
            env.process(client())
        env.run()
        assert max(latencies) > min(latencies) * 4

    def test_atomic_service_slower_than_read(self, env):
        fab = Fabric(env, FabricConfig())
        node = MemoryNode(env, 0, capacity=1024,
                          nic_profile=NicProfile(op_overhead=0.03,
                                                 atomic_overhead=0.5))
        fab.add_node(node)
        read_t = fab._service_time(node, ReadOp(0, 0, 8))
        cas_t = fab._service_time(node, CasOp(0, 0, 0, 1))
        assert cas_t > read_t

    def test_empty_batch_rejected(self, env, fabric):
        with pytest.raises(ValueError):
            fabric.post([])


class TestCrashes:
    def test_crashed_node_returns_fail(self, env, fabric):
        fabric.node(0).crash()
        comps = run_batch(env, fabric, [ReadOp(0, 0, 8)])
        assert comps[0].value is FAIL
        assert comps[0].failed

    def test_crashed_node_memory_not_modified(self, env, fabric):
        fabric.node(0).crash()
        run_batch(env, fabric, [WriteOp(0, 0, b"\xff" * 8)])
        assert fabric.node(0).memory[0:8] == bytearray(8)

    def test_partial_batch_failure(self, env, fabric):
        """A batch spanning a crashed and a live node fails only partially."""
        fabric.node(0).crash()
        comps = run_batch(env, fabric, [
            WriteOp(0, 0, b"x" * 8),
            WriteOp(1, 0, b"y" * 8),
        ])
        assert comps[0].failed
        assert not comps[1].failed
        assert bytes(fabric.node(1).memory[0:8]) == b"y" * 8

    def test_alive_nodes_excludes_crashed(self, env, fabric):
        fabric.node(0).crash()
        assert fabric.alive_nodes() == [1]

    def test_recovered_node_serves_again(self, env, fabric):
        fabric.node(0).crash()
        fabric.node(0).recover()
        comps = run_batch(env, fabric, [ReadOp(0, 0, 8)])
        assert not comps[0].failed

    def test_fail_sentinel_is_falsy_singleton(self):
        assert not FAIL
        assert repr(FAIL) == "FAIL"


class TestRpc:
    def test_rpc_roundtrip(self, env, fabric):
        node = fabric.node(0)
        node.register_rpc("echo", lambda payload: ({"echo": payload["x"]}, 1.0))

        def proc():
            return (yield fabric.rpc(0, "echo", {"x": 7}))

        reply = env.run(until=env.process(proc()))
        assert reply == {"echo": 7}
        assert env.now > 2 * fabric.config.one_way_delay_us

    def test_rpc_to_crashed_node_fails(self, env, fabric):
        fabric.node(0).crash()

        def proc():
            return (yield fabric.rpc(0, "anything", {}))

        assert env.run(until=env.process(proc())) is FAIL

    def test_rpc_cpu_serialisation(self, env):
        """With one core, concurrent RPCs serialize on CPU service time."""
        fab = Fabric(env, FabricConfig())
        node = MemoryNode(env, 0, capacity=64, cpu_cores=1)
        node.register_rpc("work", lambda payload: ({}, 10.0))
        fab.add_node(node)
        finishes = []

        def client():
            yield fab.rpc(0, "work", {})
            finishes.append(env.now)

        for _ in range(3):
            env.process(client())
        env.run()
        assert finishes[-1] >= 30.0

    def test_unknown_rpc_raises(self, env, fabric):
        def proc():
            return (yield fabric.rpc(0, "missing", {}))

        with pytest.raises(KeyError):
            env.run(until=env.process(proc()))


class TestStats:
    def test_op_counters(self, env, fabric):
        run_batch(env, fabric, [
            ReadOp(0, 0, 8),
            WriteOp(1, 0, b"12345678"),
            CasOp(0, 8, 0, 1),
            FaaOp(1, 8, 1),
        ])
        stats = fabric.stats
        assert stats.reads == 1
        assert stats.writes == 1
        assert stats.atomics == 2
        assert stats.batches == 1
        assert stats.bytes_moved == 8 + 8 + 8 + 8
        assert stats.per_mn_ops == {0: 2, 1: 2}

    def test_snapshot_is_independent_copy(self, env, fabric):
        run_batch(env, fabric, [ReadOp(0, 0, 8)])
        snap = fabric.stats.snapshot()
        run_batch(env, fabric, [ReadOp(0, 0, 8)])
        assert snap.reads == 1
        assert fabric.stats.reads == 2


class TestFabricStatsSnapshot:
    """Guards the generic field-complete snapshot (see FabricStats)."""

    def test_snapshot_covers_every_field(self):
        from dataclasses import fields

        from repro.rdma.fabric import FabricStats

        stats = FabricStats()
        # give every field a distinctive non-default value
        for index, f in enumerate(fields(FabricStats), start=1):
            if f.name == "per_mn_ops":
                stats.per_mn_ops = {0: index}
            else:
                setattr(stats, f.name, index)
        snap = stats.snapshot()
        for f in fields(FabricStats):
            assert getattr(snap, f.name) == getattr(stats, f.name), f.name

    def test_snapshot_dicts_are_deep_copied(self):
        from repro.rdma.fabric import FabricStats

        stats = FabricStats()
        stats.per_mn_ops[0] = 1
        snap = stats.snapshot()
        stats.per_mn_ops[0] = 99
        stats.per_mn_ops[1] = 7
        assert snap.per_mn_ops == {0: 1}

    def test_failed_verbs_counted_and_snapshotted(self, env, fabric):
        fabric.node(1).crash()
        run_batch(env, fabric, [ReadOp(0, 0, 8), ReadOp(1, 0, 8)])
        assert fabric.stats.failed_verbs == 1
        assert fabric.stats.snapshot().failed_verbs == 1


def _coalescing_fabric(width, adaptive=False, capacity=1 << 20):
    env = Environment()
    fab = Fabric(env, FabricConfig(max_coalesce_width=width,
                                   coalesce_adaptive=adaptive))
    for mn_id in range(2):
        fab.add_node(MemoryNode(env, mn_id, capacity=capacity))
    return env, fab


class TestDoorbellCoalescing:
    """Adaptive verb coalescing: adjacent same-QP READs/WRITEs of one
    doorbell batch may share a NIC serialisation slot (one op_overhead
    for the group), bounded by ``max_coalesce_width``."""

    def test_width_below_one_rejected(self):
        with pytest.raises(ValueError):
            FabricConfig(max_coalesce_width=0)

    def test_default_width_never_coalesces(self, env, fabric):
        run_batch(env, fabric, [WriteOp(0, 0, b"a" * 8),
                                WriteOp(0, 8, b"b" * 8)])
        assert fabric.stats.coalesced_slots == 0
        assert fabric.stats.coalesced_verbs == 0

    def test_adjacent_same_node_writes_share_one_slot(self):
        env, fab = _coalescing_fabric(width=8)
        run_batch(env, fab, [WriteOp(0, 0, b"a" * 8),
                             WriteOp(0, 8, b"b" * 8),
                             WriteOp(1, 0, b"c" * 8)])
        assert fab.stats.coalesced_slots == 1
        assert fab.stats.coalesced_verbs == 1

    def test_group_size_caps_at_width(self):
        env, fab = _coalescing_fabric(width=2)
        run_batch(env, fab,
                  [WriteOp(0, i * 8, b"x" * 8) for i in range(5)])
        # groups of 2, 2, 1 -> two shared slots, two rider verbs
        assert fab.stats.coalesced_slots == 2
        assert fab.stats.coalesced_verbs == 2

    def test_atomics_never_coalesce(self):
        env, fab = _coalescing_fabric(width=8)
        run_batch(env, fab, [CasOp(0, 0, 0, 1), CasOp(0, 8, 0, 1),
                             FaaOp(0, 16, 1)])
        assert fab.stats.coalesced_slots == 0

    def test_reads_and_writes_do_not_merge(self):
        """READs (tx) and WRITEs (rx) serialise on different ports."""
        env, fab = _coalescing_fabric(width=8)
        run_batch(env, fab, [WriteOp(0, 0, b"a" * 8), ReadOp(0, 0, 8),
                             WriteOp(0, 8, b"b" * 8)])
        assert fab.stats.coalesced_slots == 0

    def test_coalesced_batch_finishes_sooner(self):
        ops = [WriteOp(0, i * 64, b"z" * 64) for i in range(8)]
        env1, fab1 = _coalescing_fabric(width=1)
        run_batch(env1, fab1, list(ops))
        env8, fab8 = _coalescing_fabric(width=8)
        run_batch(env8, fab8, list(ops))
        assert env8.now < env1.now

    def test_batch_count_is_unchanged(self):
        """Coalescing shares NIC slots, it never changes RTT accounting."""
        env, fab = _coalescing_fabric(width=8)
        run_batch(env, fab, [WriteOp(0, 0, b"a" * 8),
                             WriteOp(0, 8, b"b" * 8)])
        assert fab.stats.batches == 1

    def test_adaptive_idle_port_does_not_coalesce(self):
        env, fab = _coalescing_fabric(width=8, adaptive=True)
        run_batch(env, fab, [WriteOp(0, 0, b"a" * 8),
                             WriteOp(0, 8, b"b" * 8)])
        assert fab.stats.coalesced_slots == 0

    def test_adaptive_backlogged_port_coalesces(self):
        env, fab = _coalescing_fabric(width=8, adaptive=True)

        def load():
            yield fab.post([WriteOp(0, 0, bytes(64 << 10))])

        def probe():
            yield env.timeout(0.5)
            yield fab.post([WriteOp(0, 0, b"a" * 8),
                            WriteOp(0, 8, b"b" * 8)])

        env.process(load())
        env.run(until=env.process(probe()))
        assert fab.stats.coalesced_slots == 1

    def test_crashed_node_still_fails_per_verb(self):
        env, fab = _coalescing_fabric(width=8)
        fab.node(0).crash()
        comps = run_batch(env, fab, [WriteOp(0, 0, b"x" * 8),
                                     WriteOp(0, 8, b"y" * 8),
                                     WriteOp(1, 0, b"z" * 8)])
        assert [c.failed for c in comps] == [True, True, False]
        assert fab.stats.coalesced_slots == 0


def _multiqueue_fabric(num_ports, affinity="qp", rpc_shards=1,
                       capacity=1 << 20, n_nodes=2):
    env = Environment()
    fab = Fabric(env, FabricConfig(port_affinity=affinity))
    for mn_id in range(n_nodes):
        fab.add_node(MemoryNode(env, mn_id, capacity=capacity,
                                num_ports=num_ports,
                                rpc_shards=rpc_shards))
    return env, fab


class TestMultiQueue:
    """Multi-queue NICs: per-QP port affinity, sharded RPC CPUs, and the
    per-port observability the profiler's blocking-edge ranking uses."""

    def test_bad_affinity_rejected(self):
        with pytest.raises(ValueError):
            FabricConfig(port_affinity="bogus")

    def test_affinity_modes_exported(self):
        assert set(PORT_AFFINITY_MODES) == {"qp", "rss"}

    def test_bad_port_and_shard_counts_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            MemoryNode(env, 0, capacity=64, num_ports=0)
        with pytest.raises(ValueError):
            MemoryNode(env, 0, capacity=64, rpc_shards=0)

    def test_single_port_keeps_legacy_labels(self):
        env, fab = _multiqueue_fabric(num_ports=1)
        node = fab.node(0)
        assert node.nic.label == "mn0.nic_rx"
        assert node.nic_tx.label == "mn0.nic_tx"
        assert node.cpu.label == "mn0.cpu"

    def test_multi_port_labels_name_each_port(self):
        env, fab = _multiqueue_fabric(num_ports=3, rpc_shards=2)
        node = fab.node(1)
        assert [p.label for p in node.rx_ports] == \
            ["mn1.nic_rx.p0", "mn1.nic_rx.p1", "mn1.nic_rx.p2"]
        assert [p.label for p in node.tx_ports] == \
            ["mn1.nic_tx.p0", "mn1.nic_tx.p1", "mn1.nic_tx.p2"]
        assert [c.label for c in node.cpus] == \
            ["mn1.cpu.s0", "mn1.cpu.s1"]

    def test_port_choice_is_deterministic(self):
        env, fab = _multiqueue_fabric(num_ports=4)
        node = fab.node(0)
        for qp in range(16):
            first = fab._port_for(node, True, qp)
            assert fab._port_for(node, True, qp) == first

    def test_same_qp_same_direction_single_port(self):
        """All same-QP traffic of one direction serialises on one port."""
        env, fab = _multiqueue_fabric(num_ports=4)
        run_batch(env, fab, [WriteOp(0, i * 8, b"x" * 8)
                             for i in range(6)], qp=5)
        used = [label for label, n in fab.stats.per_port_ops.items()
                if n and "nic_rx" in label]
        assert len(used) == 1

    def test_distinct_qps_spread_across_ports(self):
        env, fab = _multiqueue_fabric(num_ports=4)
        node = fab.node(0)
        ports = {fab._port_for(node, True, qp)[0] for qp in range(64)}
        assert len(ports) == 4

    def test_rss_mixes_mn_and_direction(self):
        """Under "rss" a QP's rx and tx lanes land independently, and
        different MNs see different placements for the same QP set."""
        env, fab = _multiqueue_fabric(num_ports=4, affinity="rss")
        qps = range(32)
        rx0 = tuple(fab._port_for(fab.node(0), False, q)[0] for q in qps)
        tx0 = tuple(fab._port_for(fab.node(0), True, q)[0] for q in qps)
        rx1 = tuple(fab._port_for(fab.node(1), False, q)[0] for q in qps)
        assert rx0 != tx0
        assert rx0 != rx1

    def test_retry_salt_visits_every_port(self):
        env, fab = _multiqueue_fabric(num_ports=4)
        node = fab.node(0)
        seen = {fab._port_for(node, True, 3, salt=s)[0] for s in range(4)}
        assert seen == {0, 1, 2, 3}

    def test_per_port_ops_counted_by_label(self):
        env, fab = _multiqueue_fabric(num_ports=2)
        run_batch(env, fab, [WriteOp(0, 0, b"a" * 8)], qp=0)
        run_batch(env, fab, [ReadOp(0, 0, 8)], qp=0)
        labels = set(fab.stats.per_port_ops)
        assert any("nic_rx.p" in label for label in labels)
        assert any("nic_tx.p" in label for label in labels)
        assert sum(fab.stats.per_port_ops.values()) == 2

    def test_single_port_counters_use_legacy_labels(self, env, fabric):
        run_batch(env, fabric, [WriteOp(0, 0, b"a" * 8)])
        assert fabric.stats.per_port_ops == {"mn0.nic_rx": 1}

    def test_rpc_shards_split_cpu_capacity(self):
        env = Environment()
        node = MemoryNode(env, 0, capacity=64, cpu_cores=4, rpc_shards=2)
        assert [c.capacity for c in node.cpus] == [2, 2]
        assert node.cpu_capacity == 4

    def test_rpc_shard_choice_follows_qp(self):
        env, fab = _multiqueue_fabric(num_ports=1, rpc_shards=4)
        node = fab.node(0)
        shards = {fab._cpu_for(node, qp).label for qp in range(64)}
        assert len(shards) == 4
        assert fab._cpu_for(node, 9) is fab._cpu_for(node, 9)

    def test_rpc_shards_run_concurrently(self):
        """QPs mapping to different shards are not serialised on one
        core — the sharded service finishes sooner than one shard."""
        def run(rpc_shards):
            env, fab = _multiqueue_fabric(num_ports=1,
                                          rpc_shards=rpc_shards)
            node = fab.node(0)
            node.register_rpc("work", lambda payload: ({}, 10.0))

            def client(qp):
                yield fab.rpc(0, "work", {}, qp=qp)

            # qps chosen to land on distinct shards when sharded
            for qp in range(8):
                env.process(client(qp))
            env.run()
            return env.now

        assert run(rpc_shards=4) < run(rpc_shards=1)

    def test_bind_qp_returns_stamping_proxy(self):
        env, fab = _multiqueue_fabric(num_ports=4)
        bound = fab.bind_qp(7)
        assert isinstance(bound, QpFabric)
        assert bound.qp == 7
        assert bound.node(0) is fab.node(0)      # delegation

        def proc():
            yield bound.post([WriteOp(0, 0, b"q" * 8)])

        env.run(until=env.process(proc()))
        expect = fab.node(0).rx_ports[
            fab._port_for(fab.node(0), False, 7)[0]].label
        assert fab.stats.per_port_ops == {expect: 1}

    def test_backlog_helpers_aggregate_ports(self):
        env, fab = _multiqueue_fabric(num_ports=2)
        node = fab.node(0)
        node.rx_ports[0].occupy(5.0, env.now)
        node.rx_ports[1].occupy(3.0, env.now)
        node.tx_ports[1].occupy(2.0, env.now)
        assert node.rx_backlog(env.now) == pytest.approx(8.0)
        assert node.tx_backlog(env.now) == pytest.approx(2.0)


class TestCoalescingOrdering:
    """§4.6 doorbell semantics: coalescing must never reorder same-QP
    WRITEs — the body-before-entry ordering crash consistency rests on
    — for any batch width, port count, or affinity policy, adaptive or
    not."""

    @given(writes=st.lists(
               st.tuples(st.integers(0, 1),          # memory node
                         st.integers(0, 48),         # address
                         st.binary(min_size=1, max_size=16)),
               min_size=1, max_size=12),
           width=st.integers(1, 12),
           adaptive=st.booleans(),
           preload=st.booleans(),
           num_ports=st.integers(1, 4),
           affinity=st.sampled_from(PORT_AFFINITY_MODES),
           qp=st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_memory_matches_sequential_application(self, writes, width,
                                                   adaptive, preload,
                                                   num_ports, affinity,
                                                   qp):
        env = Environment()
        fab = Fabric(env, FabricConfig(max_coalesce_width=width,
                                       coalesce_adaptive=adaptive,
                                       port_affinity=affinity))
        for mn_id in range(2):
            fab.add_node(MemoryNode(env, mn_id, capacity=128,
                                    num_ports=num_ports))
        if preload:
            # queue service on both rx ports so adaptive mode widens
            def busy():
                yield fab.post([WriteOp(0, 64, bytes(64)),
                                WriteOp(1, 64, bytes(64))], qp=qp)
            env.process(busy())
        reference = {0: bytearray(128), 1: bytearray(128)}
        ops = []
        for mn, addr, data in writes:
            ops.append(WriteOp(mn, addr, data))
            reference[mn][addr:addr + len(data)] = data
        run_batch(env, fab, ops, qp=qp)
        for mn_id in (0, 1):
            assert bytes(fab.node(mn_id).memory) == bytes(reference[mn_id])

    @given(batch=st.lists(
               st.tuples(st.integers(0, 1), st.integers(0, 48),
                         st.one_of(st.none(),
                                   st.binary(min_size=1, max_size=16))),
               min_size=1, max_size=12),
           width=st.integers(1, 12),
           num_ports=st.integers(1, 4),
           affinity=st.sampled_from(PORT_AFFINITY_MODES),
           qp=st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_reads_observe_every_earlier_write(self, batch, width,
                                               num_ports, affinity, qp):
        """Within a batch each READ sees exactly the WRITEs before it,
        whatever port its QP hashes to."""
        env = Environment()
        fab = Fabric(env, FabricConfig(max_coalesce_width=width,
                                       coalesce_adaptive=False,
                                       port_affinity=affinity))
        for mn_id in range(2):
            fab.add_node(MemoryNode(env, mn_id, capacity=128,
                                    num_ports=num_ports))
        reference = {0: bytearray(128), 1: bytearray(128)}
        ops, expect = [], []
        for mn, addr, data in batch:
            if data is None:
                ops.append(ReadOp(mn, addr, 8))
                expect.append(bytes(reference[mn][addr:addr + 8]))
            else:
                ops.append(WriteOp(mn, addr, data))
                reference[mn][addr:addr + len(data)] = data
                expect.append(None)
        comps = run_batch(env, fab, ops, qp=qp)
        for comp, want in zip(comps, expect):
            if want is not None:
                assert comp.value == want
