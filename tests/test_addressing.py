"""Tests for the global address space and region layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addressing import RegionConfig, RegionLayout, RegionMap
from repro.core.ring import ConsistentHashRing


def make_map(n_nodes=3, r=2, n_regions=4, **region_kw):
    config = RegionConfig(region_size=1 << 18, block_size=1 << 13,
                          min_object_size=64, **region_kw)
    ring = ConsistentHashRing(range(n_nodes))
    rmap = RegionMap(config, ring, replication_factor=r)
    carves = {mn: 0 for mn in range(n_nodes)}

    def carve(mn, nbytes):
        base = carves[mn]
        carves[mn] += nbytes
        return base

    for rid in range(n_regions):
        rmap.place_region(rid, carve)
    return rmap


class TestRegionConfig:
    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            RegionConfig(region_size=1000)

    def test_block_larger_than_region_rejected(self):
        with pytest.raises(ValueError):
            RegionConfig(region_size=1 << 12, block_size=1 << 13)

    def test_shift_and_mask(self):
        cfg = RegionConfig(region_size=1 << 20)
        assert cfg.region_shift == 20
        assert cfg.offset_mask == (1 << 20) - 1


class TestRegionLayout:
    def test_blocks_fit_in_region(self):
        cfg = RegionConfig(region_size=1 << 18, block_size=1 << 13)
        layout = RegionLayout(cfg)
        last_end = (layout.block_offset(layout.n_blocks - 1)
                    + cfg.block_size)
        assert last_end <= cfg.region_size
        assert layout.n_blocks >= 1

    def test_metadata_precedes_data(self):
        layout = RegionLayout(RegionConfig(region_size=1 << 18,
                                           block_size=1 << 13))
        assert layout.table_offset < layout.bitmap_offset < layout.data_offset

    def test_block_index_roundtrip(self):
        layout = RegionLayout(RegionConfig(region_size=1 << 18,
                                           block_size=1 << 13))
        for block in range(layout.n_blocks):
            off = layout.block_offset(block)
            assert layout.block_index_of(off) == block
            assert layout.block_index_of(off + 100) == block

    def test_metadata_offset_rejected(self):
        layout = RegionLayout(RegionConfig(region_size=1 << 18,
                                           block_size=1 << 13))
        with pytest.raises(ValueError):
            layout.block_index_of(0)

    def test_object_bit_distinct_per_object(self):
        cfg = RegionConfig(region_size=1 << 18, block_size=1 << 13,
                           min_object_size=64)
        layout = RegionLayout(cfg)
        start = layout.block_offset(0)
        seen = set()
        for i in range(cfg.block_size // 64):
            bit = layout.object_bit(start + i * 64)
            assert bit not in seen
            seen.add(bit)

    def test_bitmap_bit_in_block_bitmap_range(self):
        cfg = RegionConfig(region_size=1 << 18, block_size=1 << 13)
        layout = RegionLayout(cfg)
        for block in (0, layout.n_blocks - 1):
            byte, bit = layout.object_bit(layout.block_offset(block))
            assert layout.bitmap_offset_of(block) <= byte
            assert byte < (layout.bitmap_offset_of(block)
                           + layout.bitmap_bytes_per_block)
            assert 0 <= bit < 8

    def test_region_too_small_rejected(self):
        with pytest.raises(ValueError):
            RegionLayout(RegionConfig(region_size=1 << 12,
                                      block_size=1 << 12))


class TestRegionMap:
    def test_placement_replicas_distinct_nodes(self):
        rmap = make_map()
        for rid in rmap.region_ids:
            mns = [mn for mn, _ in rmap.placement(rid)]
            assert len(mns) == len(set(mns)) == 2

    def test_gaddr_split_roundtrip(self):
        rmap = make_map()
        gaddr = rmap.gaddr(3, 12345)
        assert rmap.split(gaddr) == (3, 12345)

    def test_gaddr_offset_bounds(self):
        rmap = make_map()
        with pytest.raises(ValueError):
            rmap.gaddr(0, rmap.config.region_size)

    def test_translate_consistent_with_placement(self):
        rmap = make_map()
        gaddr = rmap.gaddr(1, 500)
        locs = rmap.translate(gaddr)
        placement = rmap.placement(1)
        assert len(locs) == len(placement)
        for (mn, addr), (pmn, base) in zip(locs, placement):
            assert mn == pmn
            assert addr == base + 500

    def test_translate_primary_is_first(self):
        rmap = make_map()
        gaddr = rmap.gaddr(2, 64)
        assert rmap.translate_primary(gaddr) == rmap.translate(gaddr)[0]

    def test_translate_alive_filters(self):
        rmap = make_map()
        gaddr = rmap.gaddr(0, 64)
        all_locs = rmap.translate(gaddr)
        alive = {all_locs[1][0]}
        assert rmap.translate_alive(gaddr, alive) == [all_locs[1]]

    def test_primary_regions_cover_all_regions(self):
        rmap = make_map(n_regions=6)
        primaries = []
        for mn in range(3):
            primaries.extend(rmap.primary_regions_of(mn))
        assert sorted(primaries) == list(range(6))

    def test_duplicate_region_rejected(self):
        rmap = make_map()
        with pytest.raises(ValueError):
            rmap.place_region(0, lambda mn, n: 0)

    def test_zero_gaddr_is_region_metadata(self):
        """gaddr 0 = region 0, offset 0 = block table: never a KV address,
        so it can serve as the null pointer."""
        rmap = make_map()
        assert rmap.layout.data_offset > 0

    @given(rid=st.integers(0, 3), off=st.integers(0, (1 << 18) - 1))
    @settings(max_examples=100)
    def test_split_property(self, rid, off):
        rmap = make_map()
        assert rmap.split(rmap.gaddr(rid, off)) == (rid, off)
