"""End-to-end integration scenarios spanning multiple subsystems."""

import pytest

from repro.core import FuseeCluster
from repro.core.client import ClientCrashed, CrashPoint
from repro.harness import fusee_bed, run_closed_loop
from repro.harness.experiments import _dataset, _ycsb_factory
from repro.harness import Scale
from repro.workloads import YcsbConfig, YcsbWorkload
from tests.conftest import small_config, run


class TestYcsbOnFusee:
    def bed(self, scale):
        bed = fusee_bed(dataset_bytes=scale.n_keys * scale.kv_size,
                        background_interval_us=500.0)
        bed.load(_dataset(scale))
        return bed

    def test_ycsb_a_no_errors(self):
        scale = Scale.tiny()
        bed = self.bed(scale)
        clients = [bed.new_client() for _ in range(scale.n_clients)]
        result = run_closed_loop(bed.env, clients,
                                 _ycsb_factory(scale, "A"), bed.execute,
                                 duration_us=scale.duration_us,
                                 warmup_us=scale.warmup_us)
        assert result.errors == 0
        assert result.ops > 100

    def test_ycsb_d_inserts_and_reads_latest(self):
        scale = Scale.tiny()
        bed = self.bed(scale)
        clients = [bed.new_client() for _ in range(4)]
        result = run_closed_loop(bed.env, clients,
                                 _ycsb_factory(scale, "D"), bed.execute,
                                 duration_us=scale.duration_us)
        assert result.errors == 0
        assert result.per_op_counts.get("insert", 0) > 0

    def test_replicas_consistent_after_ycsb_a(self):
        scale = Scale.tiny()
        bed = self.bed(scale)
        clients = [bed.new_client() for _ in range(8)]
        run_closed_loop(bed.env, clients, _ycsb_factory(scale, "A"),
                        bed.execute, duration_us=scale.duration_us)
        # let in-flight conflict rounds drain, then compare index replicas
        bed.env.run(until=bed.env.now + 500.0)
        race = bed.cluster.race
        for subtable in range(race.config.n_subtables):
            images = [bytes(bed.cluster.fabric.node(mn).memory[
                base:base + race.config.subtable_bytes])
                for mn, base in race.placement(subtable)]
            assert all(img == images[0] for img in images)


class TestMixedCrashes:
    def test_mn_and_client_crash_together(self):
        """§5.4: recover MN failures first, then the crashed client."""
        cluster = FuseeCluster(small_config(n_memory_nodes=3,
                                            replication_factor=2))
        client = cluster.new_client()
        for i in range(30):
            run(cluster, client.insert(f"key-{i}".encode(), b"v"))
        client.arm_crash(CrashPoint.C1)
        with pytest.raises(ClientCrashed):
            run(cluster, client.update(b"key-5", b"crashed-write"))
        cluster.crash_memory_node(2)
        # master: MN failover first
        lease = cluster.config.master.lease_us
        cluster.run(until=cluster.env.now + lease * 4)
        assert 2 in cluster.master.handled_mn_failures
        # then client recovery
        def proc():
            return (yield from cluster.master.recover_client(client.cid))
        report, state = run(cluster, proc())
        reader = cluster.new_client()
        assert run(cluster, reader.search(b"key-5")).value \
            == b"crashed-write"
        for i in range(30):
            if i == 5:
                continue
            assert run(cluster, reader.search(f"key-{i}".encode())).ok

    def test_two_client_crashes_recovered_independently(self):
        cluster = FuseeCluster(small_config())
        a, b = cluster.new_client(), cluster.new_client()
        run(cluster, a.insert(b"ka", b"va"))
        run(cluster, b.insert(b"kb", b"vb"))
        for client, key in ((a, b"ka"), (b, b"kb")):
            client.arm_crash(CrashPoint.C2)
            with pytest.raises(ClientCrashed):
                run(cluster, client.update(key, b"new-" + key))
        for client in (a, b):
            def proc(c=client):
                return (yield from cluster.master.recover_client(c.cid))
            run(cluster, proc())
        reader = cluster.new_client()
        assert run(cluster, reader.search(b"ka")).value == b"new-ka"
        assert run(cluster, reader.search(b"kb")).value == b"new-kb"


class TestMemoryStability:
    def test_sustained_churn_in_bounded_memory(self):
        """Hours of simulated update churn must not exhaust the pool, as
        long as background reclamation runs (the paper's steady state)."""
        cluster = FuseeCluster(small_config())
        client = cluster.new_client()
        client.start_background(interval_us=300.0)
        keys = [f"churn-{i}".encode() for i in range(20)]
        for key in keys:
            run(cluster, client.insert(key, b"x" * 100))
        blocks_mid = None
        for round_no in range(12):
            for i, key in enumerate(keys):
                assert run(cluster, client.update(
                    key, f"{round_no}-{i}".encode().ljust(100, b"."))).ok
            cluster.run(until=cluster.env.now + 600.0)
            if round_no == 5:
                blocks_mid = client.allocator.stats_blocks_allocated
        assert client.allocator.stats_blocks_allocated == blocks_mid

    def test_fabric_counters_monotone(self):
        cluster = FuseeCluster(small_config())
        client = cluster.new_client()
        before = cluster.fabric.stats.snapshot()
        run(cluster, client.insert(b"k", b"v"))
        after = cluster.fabric.stats
        assert after.writes > before.writes
        assert after.atomics > before.atomics
        assert after.batches > before.batches


class TestElasticitySmoke:
    def test_clients_added_mid_run_contribute(self):
        scale = Scale.tiny()
        bed = fusee_bed(dataset_bytes=scale.n_keys * scale.kv_size)
        bed.load(_dataset(scale))
        base = [bed.new_client() for _ in range(2)]

        def add():
            return [(bed.new_client(), _ycsb_factory(scale, "C")(99))]

        result = run_closed_loop(
            bed.env, base, _ycsb_factory(scale, "C"), bed.execute,
            duration_us=1_000.0, timeline_bucket_us=250.0,
            events=[(500.0, add)])
        first = sum(m for t, m in result.timeline if t < 500.0)
        second = sum(m for t, m in result.timeline if t >= 500.0)
        assert second > first
