"""Unit and property tests for the on-wire data formats."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wire import (
    KV_HEADER_SIZE,
    LOG_ENTRY_SIZE,
    LogEntry,
    MASTER_COMMIT_OLD_VALUE,
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    committed_old_value_bytes,
    crc8,
    decode_kv_block,
    decode_log_entry,
    encode_kv_block,
    encode_log_entry,
    kv_block_size,
    log_entry_offset,
    make_fingerprint,
    old_value_offset,
    pack_slot,
    unpack_slot,
)


class TestSlotPacking:
    def test_roundtrip(self):
        word = pack_slot(0xAB, 16, 0x123456789ABC)
        slot = unpack_slot(word)
        assert slot.fingerprint == 0xAB
        assert slot.length_units == 16
        assert slot.pointer == 0x123456789ABC

    def test_empty_slot_is_zero(self):
        slot = unpack_slot(0)
        assert slot.empty
        assert slot.pointer == 0

    def test_block_bytes(self):
        assert unpack_slot(pack_slot(1, 4, 64)).block_bytes == 256

    def test_fingerprint_out_of_range(self):
        with pytest.raises(ValueError):
            pack_slot(256, 0, 0)

    def test_length_out_of_range(self):
        with pytest.raises(ValueError):
            pack_slot(0, 256, 0)

    def test_pointer_out_of_range(self):
        with pytest.raises(ValueError):
            pack_slot(0, 0, 1 << 48)

    def test_word_fits_64_bits(self):
        word = pack_slot(255, 255, (1 << 48) - 1)
        assert word < (1 << 64)

    @given(fp=st.integers(0, 255), ln=st.integers(0, 255),
           ptr=st.integers(0, (1 << 48) - 1))
    def test_roundtrip_property(self, fp, ln, ptr):
        slot = unpack_slot(pack_slot(fp, ln, ptr))
        assert (slot.fingerprint, slot.length_units, slot.pointer) == (
            fp, ln, ptr)

    @given(h=st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_fingerprint_nonzero(self, h):
        assert 1 <= make_fingerprint(h) <= 255


class TestCrc8:
    def test_zero_payload_has_nonzero_crc(self):
        """The all-zero 'never written' old value must fail verification."""
        assert crc8(bytes(8)) != 0

    def test_deterministic(self):
        assert crc8(b"abc") == crc8(b"abc")

    def test_sensitive_to_change(self):
        assert crc8(b"abc") != crc8(b"abd")

    def test_range(self):
        for data in (b"", b"\x00", b"\xff" * 16):
            assert 0 <= crc8(data) < 256


class TestLogEntry:
    def entry(self, **kw):
        defaults = dict(next_ptr=0x1000, prev_ptr=0x2000, old_value=0,
                        old_value_crc=0, opcode=OP_UPDATE, used=True)
        defaults.update(kw)
        return LogEntry(**defaults)

    def test_size(self):
        assert len(encode_log_entry(self.entry())) == LOG_ENTRY_SIZE == 22

    def test_roundtrip(self):
        entry = self.entry(next_ptr=0xABCDEF, prev_ptr=0x123456,
                           old_value=0xDEAD, old_value_crc=7,
                           opcode=OP_DELETE, used=False)
        assert decode_log_entry(encode_log_entry(entry)) == entry

    def test_uncommitted_old_value_detected(self):
        assert not self.entry().old_value_committed

    def test_committed_old_value_verifies(self):
        payload = committed_old_value_bytes(0xDEADBEEF)
        entry = self.entry(old_value=0xDEADBEEF, old_value_crc=payload[8])
        assert entry.old_value_committed

    def test_master_commit_marker_verifies(self):
        """The master writes old value 0 *with a valid CRC* (§5.4)."""
        payload = committed_old_value_bytes(MASTER_COMMIT_OLD_VALUE)
        entry = self.entry(old_value=0, old_value_crc=payload[8])
        assert entry.old_value_committed

    def test_opcode_range_enforced(self):
        with pytest.raises(ValueError):
            encode_log_entry(self.entry(opcode=128))

    def test_pointer_range_enforced(self):
        with pytest.raises(ValueError):
            encode_log_entry(self.entry(next_ptr=1 << 48))

    def test_wrong_size_decode(self):
        with pytest.raises(ValueError):
            decode_log_entry(b"\x00" * 21)

    @given(next_ptr=st.integers(0, (1 << 48) - 1),
           prev_ptr=st.integers(0, (1 << 48) - 1),
           old_value=st.integers(0, (1 << 64) - 1),
           crc=st.integers(0, 255),
           opcode=st.integers(0, 127),
           used=st.booleans())
    @settings(max_examples=200)
    def test_roundtrip_property(self, next_ptr, prev_ptr, old_value, crc,
                                opcode, used):
        entry = LogEntry(next_ptr, prev_ptr, old_value, crc, opcode, used)
        assert decode_log_entry(encode_log_entry(entry)) == entry

    def test_used_bit_is_last_byte(self):
        """The used bit must be the final byte written (order-preserving
        RDMA_WRITE integrity marker, §4.5)."""
        used = encode_log_entry(self.entry(used=True))
        unused = encode_log_entry(self.entry(used=False))
        assert used[:-1] == unused[:-1]
        assert used[-1] & 1 == 1
        assert unused[-1] & 1 == 0


class TestKvBlock:
    def test_block_size_accounts_for_framing(self):
        assert kv_block_size(3, 5) == KV_HEADER_SIZE + 3 + 5 + LOG_ENTRY_SIZE

    def test_roundtrip(self):
        entry = LogEntry(1, 2, 0, 0, OP_INSERT, True)
        block = encode_kv_block(b"key", b"value", 64, entry)
        assert len(block) == 64
        header, key, value, decoded = decode_kv_block(block)
        assert key == b"key"
        assert value == b"value"
        assert decoded == entry
        assert not header.invalid

    def test_too_small_block_rejected(self):
        entry = LogEntry(0, 0, 0, 0, OP_INSERT, True)
        with pytest.raises(ValueError):
            encode_kv_block(b"key", b"x" * 100, 64, entry)

    def test_corrupted_body_detected(self):
        entry = LogEntry(1, 2, 0, 0, OP_INSERT, True)
        block = bytearray(encode_kv_block(b"key", b"value", 64, entry))
        block[KV_HEADER_SIZE] ^= 0xFF  # flip a key byte
        with pytest.raises(ValueError):
            decode_kv_block(bytes(block))

    def test_truncated_block_detected(self):
        with pytest.raises(ValueError):
            decode_kv_block(b"\x00" * 10)

    def test_log_entry_at_end(self):
        entry = LogEntry(0xAA, 0xBB, 0, 0, OP_UPDATE, True)
        block = encode_kv_block(b"k", b"v", 128, entry)
        assert block[log_entry_offset(128):] == encode_log_entry(entry)

    def test_old_value_offset_lands_on_old_value(self):
        entry = LogEntry(0, 0, 0, 0, OP_UPDATE, True)
        block = bytearray(encode_kv_block(b"k", b"v", 128, entry))
        off = old_value_offset(128)
        block[off:off + 9] = committed_old_value_bytes(0xFEED)
        decoded = decode_log_entry(bytes(block[-LOG_ENTRY_SIZE:]))
        assert decoded.old_value == 0xFEED
        assert decoded.old_value_committed

    @given(key=st.binary(min_size=1, max_size=40),
           value=st.binary(min_size=0, max_size=200))
    @settings(max_examples=100)
    def test_roundtrip_property(self, key, value):
        entry = LogEntry(5, 6, 0, 0, OP_UPDATE, True)
        size = 64
        while size < kv_block_size(len(key), len(value)):
            size *= 2
        header, k, v, _ = decode_kv_block(
            encode_kv_block(key, value, size, entry))
        assert (k, v) == (key, value)
        assert (header.key_len, header.value_len) == (len(key), len(value))
