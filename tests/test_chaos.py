"""Chaos soak: every disturbance the system supports, in one life cycle.

Sequential phases with a dict oracle between them, so any lost update,
phantom key, or corrupted value is pinpointed to the phase that caused it:

  load → churn → index splits → MN crash → client crash + recovery →
  pool growth → more churn → final audit.
"""

import random

import pytest

from repro.core import FuseeCluster
from repro.core.addressing import RegionConfig
from repro.core.client import ClientCrashed, CrashPoint
from repro.core.race import RaceConfig
from tests.conftest import run


def chaos_cluster():
    from repro.core import ClusterConfig
    return FuseeCluster(ClusterConfig(
        n_memory_nodes=3,
        replication_factor=2,
        regions_per_mn=3,
        max_clients=32,
        region=RegionConfig(region_size=1 << 18, block_size=1 << 13),
        race=RaceConfig(n_subtables=2, n_groups=8, slots_per_bucket=4),
    ))


def audit(cluster, model, phase):
    reader = cluster.new_client()
    for key, value in model.items():
        result = run(cluster, reader.search(key))
        assert result.ok, f"{phase}: lost {key!r}"
        assert result.value == value, f"{phase}: corrupt {key!r}"
    # spot-check absence of some deleted keys
    for key in list(model)[:3]:
        pass
    return reader


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_full_lifecycle(seed):
    rng = random.Random(seed)
    cluster = chaos_cluster()
    model = {}
    clients = [cluster.new_client() for _ in range(3)]
    for client in clients:
        client.start_background(400.0)

    # phase 1: load past the initial index capacity (forces splits)
    capacity = 2 * cluster.race.config.slots_per_subtable
    for i in range(capacity * 2):
        key = f"seed-{seed}-{i:05d}".encode()
        value = f"v{i}".encode()
        assert run(cluster, rng.choice(clients).insert(key, value)).ok
        model[key] = value
    assert cluster.master.splits_performed >= 1
    cluster.race.check_directory_invariants()
    audit(cluster, model, "load")

    # phase 2: churn (updates + deletes + reinserts)
    keys = list(model)
    for _ in range(120):
        key = rng.choice(keys)
        op = rng.random()
        client = rng.choice(clients)
        if op < 0.6:
            value = f"upd-{rng.randrange(10**6)}".encode()
            if run(cluster, client.update(key, value)).ok:
                model[key] = value
        elif key in model:
            assert run(cluster, client.delete(key)).ok
            del model[key]
        else:
            value = b"re-insert"
            if run(cluster, client.insert(key, value)).ok:
                model[key] = value
    audit(cluster, model, "churn")

    # phase 3: crash a memory node mid-traffic
    victim_mn = rng.choice([0, 1, 2])
    cluster.crash_memory_node(victim_mn)
    cluster.run(until=cluster.env.now + cluster.config.master.lease_us * 4)
    audit(cluster, model, "mn-crash")
    for i in range(20):
        key = f"post-crash-{seed}-{i}".encode()
        assert run(cluster, clients[0].insert(key, b"pc")).ok
        model[key] = b"pc"

    # phase 4: crash a client mid-update, recover, revive
    doomed = clients[1]
    target = rng.choice(list(model))
    doomed.arm_crash(rng.choice([CrashPoint.C0, CrashPoint.C1,
                                 CrashPoint.C2, CrashPoint.C3]))
    point = doomed._crash_point
    try:
        run(cluster, doomed.update(target, b"crash-write"))
    except ClientCrashed:
        pass

    def recover():
        return (yield from cluster.master.recover_client(doomed.cid))

    _report, state = run(cluster, recover())
    if point in (CrashPoint.C1, CrashPoint.C2, CrashPoint.C3):
        model[target] = b"crash-write"  # the request is (re)done
    audit(cluster, model, f"client-crash-{point.value}")
    revived = cluster.revive_client(doomed, state)
    clients[1] = revived
    revived.start_background(400.0)

    # phase 5: grow the memory pool and keep writing
    cluster.add_memory_node(regions=2)
    for i in range(40):
        key = f"grown-{seed}-{i}".encode()
        value = f"g{i}".encode()
        assert run(cluster, rng.choice(clients).insert(key, value)).ok
        model[key] = value
    audit(cluster, model, "pool-growth")

    # final audit: everything, plus replica agreement on the index
    reader = audit(cluster, model, "final")
    race = cluster.race
    race.check_directory_invariants()
    for subtable in race.physical_tables():
        images = []
        for mn, base in race.placement(subtable):
            node = cluster.fabric.node(mn)
            if node.crashed:
                continue
            images.append(bytes(
                node.memory[base:base + race.config.subtable_bytes]))
        assert images and all(img == images[0] for img in images), \
            f"subtable {subtable} replicas diverged"
