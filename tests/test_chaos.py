"""Chaos soak: every disturbance the system supports, in one life cycle.

Sequential phases with a dict oracle between them, so any lost update,
phantom key, or corrupted value is pinpointed to the phase that caused it:

  load → churn → churn under packet loss → churn across a healed
  partition → index splits → MN crash → client crash + recovery →
  pool growth → more churn → final audit.
"""

import random

import pytest

from repro.core import FuseeCluster
from repro.core.addressing import RegionConfig
from repro.core.client import ClientCrashed, CrashPoint
from repro.core.race import RaceConfig
from repro.faults import CN, FaultPlan, LinkFault, Partition
from tests.conftest import run


def chaos_cluster():
    from repro.core import ClusterConfig
    return FuseeCluster(ClusterConfig(
        n_memory_nodes=3,
        replication_factor=2,
        regions_per_mn=3,
        max_clients=32,
        region=RegionConfig(region_size=1 << 18, block_size=1 << 13),
        race=RaceConfig(n_subtables=2, n_groups=8, slots_per_bucket=4),
    ))


def audit(cluster, model, phase, deleted=()):
    reader = cluster.new_client()
    for key, value in model.items():
        result = run(cluster, reader.search(key))
        assert result.ok, f"{phase}: lost {key!r}"
        assert result.value == value, f"{phase}: corrupt {key!r}"
    # spot-check absence of recently deleted keys
    for key in list(deleted)[:5]:
        assert key not in model
        result = run(cluster, reader.search(key))
        assert not result.ok, f"{phase}: deleted {key!r} resurrected"
        assert result.error is None, \
            f"{phase}: absence check of {key!r} failed: {result.error}"
    return reader


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_full_lifecycle(seed):
    rng = random.Random(seed)
    cluster = chaos_cluster()
    model = {}
    clients = [cluster.new_client() for _ in range(3)]
    for client in clients:
        client.start_background(400.0)

    # phase 1: load past the initial index capacity (forces splits)
    capacity = 2 * cluster.race.config.slots_per_subtable
    for i in range(capacity * 2):
        key = f"seed-{seed}-{i:05d}".encode()
        value = f"v{i}".encode()
        assert run(cluster, rng.choice(clients).insert(key, value)).ok
        model[key] = value
    assert cluster.master.splits_performed >= 1
    cluster.race.check_directory_invariants()
    audit(cluster, model, "load")

    # phase 2: churn (updates + deletes + reinserts)
    deleted = set()
    keys = list(model)
    for _ in range(120):
        key = rng.choice(keys)
        op = rng.random()
        client = rng.choice(clients)
        if op < 0.6:
            value = f"upd-{rng.randrange(10**6)}".encode()
            if run(cluster, client.update(key, value)).ok:
                model[key] = value
                deleted.discard(key)
        elif key in model:
            assert run(cluster, client.delete(key)).ok
            del model[key]
            deleted.add(key)
        else:
            value = b"re-insert"
            if run(cluster, client.insert(key, value)).ok:
                model[key] = value
                deleted.discard(key)
    audit(cluster, model, "churn", deleted)

    # phase 2b: churn under 1% packet loss + duplication.  Operations may
    # now fail with a typed error instead of succeeding, so the oracle is
    # only advanced on reported success — a success that did not stick, or
    # a failure that secretly applied, shows up in the audit.
    now = cluster.env.now
    cluster.install_faults(FaultPlan(link_faults=[
        LinkFault(drop_p=0.01, dup_p=0.005, jitter_us=0.5,
                  start_us=now, end_us=now + 10**9)], seed=seed))
    for _ in range(60):
        key = rng.choice(keys)
        client = rng.choice(clients)
        op = rng.random()
        if op < 0.6 or key not in model:
            value = f"lossy-{rng.randrange(10**6)}".encode()
            writer = client.update if key in model else client.insert
            if run(cluster, writer(key, value)).ok:
                model[key] = value
                deleted.discard(key)
        else:
            if run(cluster, client.delete(key)).ok:
                del model[key]
                deleted.add(key)
    cluster.clear_faults()
    audit(cluster, model, "lossy-churn", deleted)

    # phase 2c: churn *scratch* keys across a client<->MN partition that
    # heals mid-phase, then reconcile each scratch key on the healed
    # fabric.  Scratch keys keep the shared oracle untouched while the
    # partition makes outcomes uncertain; after reconciliation they join
    # the model with known values.
    now = cluster.env.now
    heal_at = now + 400.0
    cluster.install_faults(FaultPlan(partitions=[
        Partition(a=CN, b=1, start_us=now, end_us=heal_at)],
        seed=seed + 17))
    scratch = [f"scratch-{seed}-{i}".encode() for i in range(6)]
    for i in range(24):
        key = scratch[i % len(scratch)]
        client = rng.choice(clients)
        roll = rng.random()
        if roll < 0.5:
            run(cluster, client.insert(key, f"part-i{i}".encode()))
        elif roll < 0.8:
            run(cluster, client.update(key, f"part-u{i}".encode()))
        else:
            run(cluster, client.delete(key))
    if cluster.env.now < heal_at:
        cluster.run(until=heal_at + 50.0)
    cluster.clear_faults()
    for key in scratch:
        value = f"reconciled-{key.decode()}".encode()
        result = run(cluster, clients[0].update(key, value))
        if not result.ok:
            assert result.error is None, \
                f"healed update of {key!r} failed: {result.error}"
            result = run(cluster, clients[0].insert(key, value))
            assert result.ok, f"healed insert of {key!r} failed: {result}"
        model[key] = value
        deleted.discard(key)
    audit(cluster, model, "partition-heal", deleted)

    # phase 3: crash a memory node mid-traffic
    victim_mn = rng.choice([0, 1, 2])
    cluster.crash_memory_node(victim_mn)
    cluster.run(until=cluster.env.now + cluster.config.master.lease_us * 4)
    audit(cluster, model, "mn-crash", deleted)
    for i in range(20):
        key = f"post-crash-{seed}-{i}".encode()
        assert run(cluster, clients[0].insert(key, b"pc")).ok
        model[key] = b"pc"

    # phase 4: crash a client mid-update, recover, revive
    doomed = clients[1]
    target = rng.choice(list(model))
    doomed.arm_crash(rng.choice([CrashPoint.C0, CrashPoint.C1,
                                 CrashPoint.C2, CrashPoint.C3]))
    point = doomed._crash_point
    try:
        run(cluster, doomed.update(target, b"crash-write"))
    except ClientCrashed:
        pass

    def recover():
        return (yield from cluster.master.recover_client(doomed.cid))

    _report, state = run(cluster, recover())
    if point in (CrashPoint.C1, CrashPoint.C2, CrashPoint.C3):
        model[target] = b"crash-write"  # the request is (re)done
    audit(cluster, model, f"client-crash-{point.value}", deleted)
    revived = cluster.revive_client(doomed, state)
    clients[1] = revived
    revived.start_background(400.0)

    # phase 5: grow the memory pool and keep writing
    cluster.add_memory_node(regions=2)
    for i in range(40):
        key = f"grown-{seed}-{i}".encode()
        value = f"g{i}".encode()
        assert run(cluster, rng.choice(clients).insert(key, value)).ok
        model[key] = value
    audit(cluster, model, "pool-growth", deleted)

    # final audit: everything, plus replica agreement on the index
    reader = audit(cluster, model, "final", deleted)
    race = cluster.race
    race.check_directory_invariants()
    for subtable in race.physical_tables():
        images = []
        for mn, base in race.placement(subtable):
            node = cluster.fabric.node(mn)
            if node.crashed:
                continue
            images.append(bytes(
                node.memory[base:base + race.config.subtable_bytes]))
        assert images and all(img == images[0] for img in images), \
            f"subtable {subtable} replicas diverged"
