"""Randomized-schedule fuzzing of the SNAPSHOT protocol and failover.

The paper model-checks SNAPSHOT with TLA+; here we complement the
deterministic protocol tests with randomized interleavings — writer start
times, sleep jitter, crash points and crash timing all drawn from seeded
RNGs — checking the two safety properties on every schedule:

* exactly one winner per conflict round and replica convergence;
* linearizability of the observed history.
"""

import random

import pytest

from repro.core import FuseeCluster
from repro.core.linearizability import History, check_linearizable
from repro.core.race import SlotRef
from repro.core.snapshot import Outcome, snapshot_read, snapshot_write
from repro.rdma import Fabric, FabricConfig, MemoryNode
from repro.sim import Environment
from tests.conftest import small_config, run


def make_slot(r):
    env = Environment()
    fabric = Fabric(env, FabricConfig())
    for mn in range(r):
        fabric.add_node(MemoryNode(env, mn, capacity=64))
    ref = SlotRef(subtable=0, slot_index=0,
                  placement=tuple((mn, 0) for mn in range(r)))
    return env, fabric, ref


@pytest.mark.parametrize("seed", range(30))
def test_random_schedules_single_winner(seed):
    rng = random.Random(seed)
    r = rng.choice([2, 3, 4, 5])
    n_writers = rng.randint(2, 8)
    env, fabric, ref = make_slot(r)
    results = {}

    def writer(wid):
        yield env.timeout(rng.random() * 3.0)
        result = yield from snapshot_write(
            fabric, ref, 0, 100 + wid,
            retry_sleep_us=0.5 + rng.random() * 3.0)
        results[wid] = result

    for wid in range(n_writers):
        env.process(writer(wid))
    env.run()
    winners = [w for w, res in results.items() if res.outcome.won]
    assert len(winners) == 1, f"seed={seed}: winners={winners}"
    final = {fabric.node(mn).read_word(addr)
             for mn, addr in ref.locations()}
    assert final == {100 + winners[0]}
    assert all(res.outcome.completed for res in results.values())


@pytest.mark.parametrize("seed", range(20))
def test_random_schedules_linearizable(seed):
    rng = random.Random(1000 + seed)
    r = rng.choice([2, 3])
    env, fabric, ref = make_slot(r)
    history = History(initial_value=0)

    def writer(wid):
        yield env.timeout(rng.random() * 4.0)
        invoked = env.now
        result = yield from snapshot_write(fabric, ref, 0, 100 + wid)
        assert result.outcome.completed
        history.record("w", 100 + wid, invoked, env.now)

    def reader(rid):
        yield env.timeout(rng.random() * 8.0)
        invoked = env.now
        result = yield from snapshot_read(fabric, ref)
        history.record("r", result.value, invoked, env.now)

    for wid in range(rng.randint(2, 5)):
        env.process(writer(wid))
    for rid in range(rng.randint(1, 6)):
        env.process(reader(rid))
    env.run()
    assert check_linearizable(history), f"seed={seed}"


@pytest.mark.parametrize("seed", range(10))
def test_random_multi_round_chains(seed):
    """Back-to-back conflict rounds with random participation."""
    rng = random.Random(7000 + seed)
    env, fabric, ref = make_slot(3)
    committed = [0]
    for round_no in range(4):
        results = {}

        def writer(wid, base=committed[-1], tag=round_no):
            yield env.timeout(rng.random() * 2.0)
            res = yield from snapshot_write(fabric, ref, base,
                                            1000 * (tag + 1) + wid)
            results[wid] = res

        procs = [env.process(writer(wid))
                 for wid in range(rng.randint(1, 5))]
        env.run(until=env.all_of(procs))
        values = {fabric.node(mn).read_word(addr)
                  for mn, addr in ref.locations()}
        assert len(values) == 1, f"seed={seed} round={round_no}"
        committed.append(values.pop())
    assert len(set(committed)) == 5


@pytest.mark.parametrize("seed", range(8))
def test_random_cluster_ops_with_mn_crash(seed):
    """Random KV traffic with an MN crash at a random time: no lost or
    phantom keys once the dust settles."""
    rng = random.Random(40 + seed)
    cluster = FuseeCluster(small_config(n_memory_nodes=3,
                                        replication_factor=2))
    clients = [cluster.new_client() for _ in range(3)]
    model = {}
    keys = [f"fuzz-{i}".encode() for i in range(15)]
    for key in keys:
        run(cluster, clients[0].insert(key, b"init"))
        model[key] = b"init"
    env = cluster.env
    results = []

    def worker(c, ops):
        for op_no in range(ops):
            yield env.timeout(rng.random() * 8.0)
            key = rng.choice(keys)
            value = f"v-{c.cid}-{op_no}".encode()
            result = yield from c.update(key, value)
            results.append((key, value, result))

    procs = [env.process(worker(c, rng.randint(3, 8))) for c in clients]
    crash_mn = rng.randrange(3)

    def crasher():
        yield env.timeout(rng.random() * 20.0)
        cluster.crash_memory_node(crash_mn)

    env.process(crasher())
    env.run(until=env.all_of(procs))
    # settle failover
    cluster.run(until=env.now + cluster.config.master.lease_us * 4)
    assert all(result.ok for _k, _v, result in results)
    reader = cluster.new_client()
    for key in keys:
        final = run(cluster, reader.search(key))
        assert final.ok, f"seed={seed}: lost {key!r}"
        wrote = {v for k, v, _r in results if k == key} | {b"init"}
        assert final.value in wrote, f"seed={seed}: phantom on {key!r}"


class TestBackupAgreementRead:
    """Algorithm 4 READ with r=3: disagreeing backups defer to the master."""

    def test_search_with_crashed_primary_consistent_backups(self):
        cluster = FuseeCluster(small_config(n_memory_nodes=3,
                                            replication_factor=3))
        client = cluster.new_client()
        run(cluster, client.insert(b"k3", b"v3"))
        meta = cluster.race.key_meta(b"k3")
        primary_mn = cluster.race.placement(meta.subtable)[0][0]
        cluster.fabric.node(primary_mn).crash()
        reader = cluster.new_client()
        result = run(cluster, reader.search(b"k3"))
        assert result.ok and result.value == b"v3"

    def test_search_with_disagreeing_backups_waits_for_repair(self):
        cluster = FuseeCluster(small_config(n_memory_nodes=3,
                                            replication_factor=3))
        client = cluster.new_client()
        run(cluster, client.insert(b"k3", b"v3"))
        # forge an in-flight write: change ONE backup of the key's slot
        entry = client.cache.peek(b"k3")
        ref = entry.slot_ref
        locations = ref.locations()
        mn_b, addr_b = locations[1]
        forged = entry.slot_word ^ 0x1  # a conflicting proposal
        cluster.fabric.node(mn_b).write_word(addr_b, forged)
        # kill the primary: backups now disagree
        cluster.fabric.node(locations[0][0]).crash()
        reader = cluster.new_client()
        result = run(cluster, reader.search(b"k3"))
        # the master repaired the subtable; the search resolved through
        # the post-repair placement and the slot is consistent again
        new_ref = cluster.race.slot_ref(ref.subtable, ref.slot_index)
        words = {cluster.fabric.node(mn).read_word(addr)
                 for mn, addr in new_ref.locations()}
        assert len(words) == 1
        assert cluster.master.epoch >= 1
