"""Cluster bootstrap, configuration validation, and the FuseeKV façade."""

import pytest

from repro.core import ClusterConfig, FuseeCluster, FuseeKV
from repro.core.addressing import RegionConfig
from repro.core.race import RaceConfig
from tests.conftest import small_config


class TestConfigValidation:
    def test_defaults_valid(self):
        ClusterConfig()

    def test_zero_memory_nodes_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_memory_nodes=0)

    def test_replication_exceeding_nodes_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_memory_nodes=2, replication_factor=3)

    def test_index_replication_validated(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_memory_nodes=2, index_replication=5)

    def test_index_replication_defaults_to_replication_factor(self):
        config = ClusterConfig(n_memory_nodes=3, replication_factor=3)
        assert config.index_replicas == 3

    def test_index_replication_override(self):
        config = ClusterConfig(n_memory_nodes=3, replication_factor=2,
                               index_replication=1)
        assert config.index_replicas == 1


class TestBootstrap:
    def test_node_capacity_accommodates_layout(self):
        cluster = FuseeCluster(small_config())
        for node in cluster.fabric.nodes.values():
            assert node._carve_cursor <= node.capacity

    def test_every_region_replicated(self):
        cluster = FuseeCluster(small_config())
        cfg = cluster.config
        assert len(cluster.region_map.region_ids) == \
            cfg.regions_per_mn * cfg.n_memory_nodes
        for rid in cluster.region_map.region_ids:
            assert len(cluster.region_map.placement(rid)) == \
                cfg.replication_factor

    def test_index_placed_on_distinct_nodes(self):
        cluster = FuseeCluster(small_config())
        for subtable in range(cluster.config.race.n_subtables):
            mns = [mn for mn, _ in cluster.race.placement(subtable)]
            assert len(mns) == len(set(mns))

    def test_client_ids_unique_and_monotonic(self):
        cluster = FuseeCluster(small_config())
        cids = [cluster.new_client().cid for _ in range(5)]
        assert cids == sorted(set(cids))

    def test_client_config_overrides(self):
        cluster = FuseeCluster(small_config())
        client = cluster.new_client(cache_enabled=False,
                                    replication_mode="sequential")
        assert not client.cache.enabled
        assert client.config.replication_mode == "sequential"

    def test_master_detector_started(self):
        cluster = FuseeCluster(small_config())
        assert cluster.master._detector_proc is not None

    def test_index_memory_starts_empty(self):
        cluster = FuseeCluster(small_config())
        race = cluster.race
        for subtable in range(race.config.n_subtables):
            for mn, base in race.placement(subtable):
                node = cluster.fabric.node(mn)
                chunk = node.memory[base:base + race.config.subtable_bytes]
                assert not any(chunk)


class TestFacade:
    def test_crud(self):
        kv = FuseeKV(small_config())
        assert kv.insert(b"a", b"1")
        assert kv.search(b"a") == b"1"
        assert kv.update(b"a", b"2")
        assert kv.search(b"a") == b"2"
        assert kv.delete(b"a")
        assert kv.search(b"a") is None

    def test_insert_duplicate_false(self):
        kv = FuseeKV(small_config())
        kv.insert(b"a", b"1")
        assert not kv.insert(b"a", b"2")

    def test_update_missing_false(self):
        kv = FuseeKV(small_config())
        assert not kv.update(b"ghost", b"x")

    def test_clock_advances(self):
        kv = FuseeKV(small_config())
        t0 = kv.now_us
        kv.insert(b"a", b"1")
        assert kv.now_us > t0

    def test_maintenance_returns_count(self):
        kv = FuseeKV(small_config())
        kv.insert(b"a", b"1")
        for i in range(5):
            kv.update(b"a", f"{i}".encode())
        assert kv.maintenance() >= 5

    def test_shared_cluster(self):
        cluster = FuseeCluster(small_config())
        kv1 = FuseeKV(cluster=cluster)
        kv2 = FuseeKV(cluster=cluster)
        kv1.insert(b"shared", b"v")
        assert kv2.search(b"shared") == b"v"
