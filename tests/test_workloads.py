"""Tests for YCSB and microbenchmark workload generators."""

import math
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    LatestGenerator,
    MicroConfig,
    MicroWorkload,
    ScrambledZipfian,
    YcsbConfig,
    YcsbWorkload,
    ZipfianGenerator,
    key_bytes,
    make_value,
)


class TestZipfian:
    def test_range(self):
        gen = ZipfianGenerator(100, seed=1)
        for _ in range(2000):
            assert 0 <= gen.next() < 100

    def test_determinism(self):
        a = ZipfianGenerator(1000, seed=7)
        b = ZipfianGenerator(1000, seed=7)
        assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]

    def test_skew(self):
        """θ=0.99 over 1000 keys: rank 0 gets ~13% of draws."""
        gen = ZipfianGenerator(1000, theta=0.99, seed=3)
        counts = Counter(gen.next() for _ in range(20000))
        top = counts.most_common(1)[0]
        assert top[0] == 0
        assert 0.08 < top[1] / 20000 < 0.20

    def test_frequency_monotone_for_top_ranks(self):
        gen = ZipfianGenerator(100, seed=11)
        counts = Counter(gen.next() for _ in range(50000))
        assert counts[0] > counts[5] > counts[50]

    def test_theoretical_head_probability(self):
        """P(rank 0) = 1/zeta_n; check the empirical estimate."""
        n, theta = 100, 0.99
        gen = ZipfianGenerator(n, theta=theta, seed=5)
        zetan = sum(1.0 / math.pow(i, theta) for i in range(1, n + 1))
        expect = 1.0 / zetan
        draws = 40000
        got = sum(1 for _ in range(draws) if gen.next() == 0) / draws
        assert abs(got - expect) < 0.03

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.0)

    def test_single_key(self):
        gen = ZipfianGenerator(1, seed=1)
        assert all(gen.next() == 0 for _ in range(50))


class TestScrambledZipfian:
    def test_range(self):
        gen = ScrambledZipfian(500, seed=2)
        for _ in range(1000):
            assert 0 <= gen.next() < 500

    def test_hot_keys_scattered(self):
        """Scrambling must spread the hottest keys over the key space."""
        gen = ScrambledZipfian(1000, seed=2)
        counts = Counter(gen.next() for _ in range(30000))
        hot = [k for k, _ in counts.most_common(10)]
        assert max(hot) - min(hot) > 100

    def test_still_skewed(self):
        gen = ScrambledZipfian(1000, seed=4)
        counts = Counter(gen.next() for _ in range(30000))
        assert counts.most_common(1)[0][1] / 30000 > 0.05


class TestLatest:
    def test_prefers_recent(self):
        gen = LatestGenerator(1000, seed=1)
        counts = Counter(gen.next() for _ in range(20000))
        recent = sum(counts[k] for k in range(900, 1000))
        old = sum(counts[k] for k in range(0, 100))
        assert recent > old * 3

    def test_tracks_inserts(self):
        gen = LatestGenerator(100, seed=1)
        gen.observe_insert(499)
        counts = Counter(gen.next() for _ in range(5000))
        assert max(counts) > 400  # draws now reach the new maximum


class TestHelpers:
    def test_key_bytes_fixed_width(self):
        assert len(key_bytes(0)) == len(key_bytes(10**12)) == 24

    def test_key_bytes_unique(self):
        assert len({key_bytes(i) for i in range(1000)}) == 1000

    @given(st.integers(0, 4096), st.integers(0, 1000))
    @settings(max_examples=50)
    def test_make_value_size_property(self, size, salt):
        assert len(make_value(size, salt)) == size

    def test_make_value_varies_with_salt(self):
        assert make_value(64, 1) != make_value(64, 2)


class TestYcsbWorkload:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            YcsbConfig(workload="Z")

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError):
            YcsbConfig(mix=(0.5, 0.6, 0.0))

    def test_value_size_accounts_for_key(self):
        config = YcsbConfig(kv_size=1024)
        assert config.value_size == 1000

    @pytest.mark.parametrize("name,expect", [
        ("A", (0.50, 0.50)), ("B", (0.95, 0.05)), ("C", (1.0, 0.0)),
    ])
    def test_op_mix(self, name, expect):
        wl = YcsbWorkload(YcsbConfig(workload=name, n_keys=1000), seed=1)
        counts = Counter(wl.next_op()[0] for _ in range(4000))
        search_f = counts["search"] / 4000
        update_f = counts["update"] / 4000
        assert abs(search_f - expect[0]) < 0.03
        assert abs(update_f - expect[1]) < 0.03

    def test_workload_d_inserts_fresh_keys(self):
        wl = YcsbWorkload(YcsbConfig(workload="D", n_keys=100), seed=1)
        inserted = set()
        for _ in range(1000):
            op, key, value = wl.next_op()
            if op == "insert":
                assert key not in inserted
                inserted.add(key)
                assert value is not None
        assert len(inserted) > 10

    def test_custom_mix(self):
        wl = YcsbWorkload(YcsbConfig(mix=(0.3, 0.7, 0.0), n_keys=100),
                          seed=2)
        counts = Counter(wl.next_op()[0] for _ in range(3000))
        assert abs(counts["update"] / 3000 - 0.7) < 0.04

    def test_load_keys(self):
        wl = YcsbWorkload(YcsbConfig(workload="C", n_keys=50))
        keys = wl.load_keys()
        assert len(keys) == 50
        assert len(set(keys)) == 50

    def test_update_values_sized(self):
        config = YcsbConfig(workload="A", n_keys=100, kv_size=256)
        wl = YcsbWorkload(config, seed=3)
        for _ in range(200):
            op, _key, value = wl.next_op()
            if op == "update":
                assert len(value) == config.value_size

    def test_distinct_seeds_distinct_streams(self):
        a = YcsbWorkload(YcsbConfig(workload="A", n_keys=1000), seed=1)
        b = YcsbWorkload(YcsbConfig(workload="A", n_keys=1000), seed=2)
        sa = [a.next_op()[:2] for _ in range(50)]
        sb = [b.next_op()[:2] for _ in range(50)]
        assert sa != sb


class TestMicroWorkload:
    def test_insert_stream_fresh_unique_keys(self):
        wl = MicroWorkload(MicroConfig(op="insert"), client_id=3)
        keys = {wl.next_op()[1] for _ in range(100)}
        assert len(keys) == 100

    def test_insert_streams_disjoint_across_clients(self):
        a = MicroWorkload(MicroConfig(op="insert"), client_id=1)
        b = MicroWorkload(MicroConfig(op="insert"), client_id=2)
        ka = {a.next_op()[1] for _ in range(50)}
        kb = {b.next_op()[1] for _ in range(50)}
        assert not ka & kb

    def test_search_targets_loaded_keys(self):
        config = MicroConfig(op="search", n_keys=100)
        wl = MicroWorkload(config, client_id=1)
        loaded = set(wl.load_keys())
        for _ in range(100):
            op, key, value, measured = wl.next_op()
            assert op == "search" and key in loaded and measured

    def test_delete_alternates_with_unmeasured_reinsert(self):
        wl = MicroWorkload(MicroConfig(op="delete", n_keys=10), client_id=1)
        op1, key1, _v1, m1 = wl.next_op()
        op2, key2, _v2, m2 = wl.next_op()
        assert (op1, m1) == ("delete", True)
        assert (op2, m2) == ("insert", False)
        assert key1 == key2

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            MicroConfig(op="upsert")
