"""Tests for the baseline systems: Clover, pDPM-Direct, Fig. 3 objects."""

import pytest

from repro.baselines import (
    CloverCluster,
    CloverConfig,
    ConsensusReplicatedObject,
    LockReplicatedObject,
    PdpmCluster,
    PdpmConfig,
    ReplicatedObjectBed,
    RpcServer,
    SnapshotReplicatedObject,
    decode_record,
    encode_record,
)
from repro.sim import Environment


class TestRecordCodec:
    def test_roundtrip(self):
        rec = encode_record(b"key", b"value", next_version=0)
        assert decode_record(rec) == (0, b"key", b"value")

    def test_next_version_carried(self):
        rec = encode_record(b"k", b"v", next_version=0xABC)
        assert decode_record(rec)[0] == 0xABC

    def test_corruption_detected(self):
        rec = bytearray(encode_record(b"key", b"value"))
        rec[-1] ^= 0xFF
        assert decode_record(bytes(rec)) is None

    def test_truncation_detected(self):
        rec = encode_record(b"key", b"value")
        assert decode_record(rec[:10]) is None

    def test_trailing_garbage_tolerated(self):
        rec = encode_record(b"key", b"value") + b"\x00" * 64
        assert decode_record(rec) == (0, b"key", b"value")


class TestRpcServer:
    def test_call_roundtrip(self):
        env = Environment()
        server = RpcServer(env, cores=2)
        server.register("double", lambda p: ({"x": p["x"] * 2}, 1.0))

        def proc():
            return (yield server.call("double", {"x": 21}))

        assert env.run(until=env.process(proc())) == {"x": 42}
        assert server.stats.calls == 1

    def test_cpu_serializes(self):
        env = Environment()
        server = RpcServer(env, cores=1)
        server.register("slow", lambda p: ({}, 10.0))
        finishes = []

        def proc():
            yield server.call("slow", {})
            finishes.append(env.now)

        for _ in range(4):
            env.process(proc())
        env.run()
        assert finishes[-1] >= 40.0

    def test_more_cores_more_parallelism(self):
        def run_with(cores):
            env = Environment()
            server = RpcServer(env, cores=cores)
            server.register("slow", lambda p: ({}, 10.0))

            def proc():
                yield server.call("slow", {})

            procs = [env.process(proc()) for _ in range(8)]
            env.run(until=env.all_of(procs))
            return env.now

        assert run_with(8) < run_with(1) / 3


class TestClover:
    @pytest.fixture
    def cluster(self):
        return CloverCluster(CloverConfig(mn_capacity=1 << 22))

    def test_insert_and_search(self, cluster):
        client = cluster.new_client()
        assert cluster.run_op(client.insert(b"k", b"v"))
        assert cluster.run_op(client.search(b"k")) == b"v"

    def test_search_missing(self, cluster):
        client = cluster.new_client()
        assert cluster.run_op(client.search(b"nope")) is None

    def test_update(self, cluster):
        client = cluster.new_client()
        cluster.run_op(client.insert(b"k", b"v1"))
        assert cluster.run_op(client.update(b"k", b"v2"))
        assert cluster.run_op(client.search(b"k")) == b"v2"

    def test_update_missing_fails(self, cluster):
        client = cluster.new_client()
        assert not cluster.run_op(client.update(b"nope", b"v"))

    def test_duplicate_insert_fails(self, cluster):
        client = cluster.new_client()
        cluster.run_op(client.insert(b"k", b"v"))
        assert not cluster.run_op(client.insert(b"k", b"w"))

    def test_delete_unsupported(self, cluster):
        client = cluster.new_client()
        with pytest.raises(NotImplementedError):
            cluster.run_op(client.delete(b"k"))

    def test_stale_cache_follows_version_chain(self, cluster):
        a, b = cluster.new_client(), cluster.new_client()
        cluster.run_op(a.insert(b"k", b"v1"))
        assert cluster.run_op(b.search(b"k")) == b"v1"  # b caches v1's addr
        cluster.run_op(a.update(b"k", b"v2"))
        cluster.run_op(a.update(b"k", b"v3"))
        assert cluster.run_op(b.search(b"k")) == b"v3"

    def test_metadata_server_sees_every_write(self, cluster):
        client = cluster.new_client()
        cluster.run_op(client.insert(b"k", b"v"))
        for i in range(9):
            cluster.run_op(client.update(b"k", f"v{i}".encode()))
        assert cluster.metadata.stats.per_op.get("update_index", 0) == 10

    def test_search_cache_hit_avoids_metadata(self, cluster):
        client = cluster.new_client()
        cluster.run_op(client.insert(b"k", b"v"))
        calls_before = cluster.metadata.stats.calls
        for _ in range(5):
            cluster.run_op(client.search(b"k"))
        assert cluster.metadata.stats.calls == calls_before

    def test_grant_amortisation(self, cluster):
        client = cluster.new_client()
        for i in range(50):
            cluster.run_op(client.insert(f"key-{i}".encode(), b"v" * 100))
        assert client.alloc.grants_requested <= 4
        assert cluster.metadata.stats.per_op.get("alloc_grant", 0) \
            == client.alloc.grants_requested


class TestPdpm:
    @pytest.fixture
    def cluster(self):
        return PdpmCluster(PdpmConfig())

    def test_insert_and_search(self, cluster):
        client = cluster.new_client()
        assert cluster.run_op(client.insert(b"k", b"v"))
        assert cluster.run_op(client.search(b"k")) == b"v"

    def test_search_missing(self, cluster):
        client = cluster.new_client()
        assert cluster.run_op(client.search(b"nope")) is None

    def test_update_in_place(self, cluster):
        client = cluster.new_client()
        cluster.run_op(client.insert(b"k", b"v1"))
        assert cluster.run_op(client.update(b"k", b"v2"))
        assert cluster.run_op(client.search(b"k")) == b"v2"

    def test_update_missing_fails(self, cluster):
        client = cluster.new_client()
        assert not cluster.run_op(client.update(b"nope", b"v"))

    def test_delete(self, cluster):
        client = cluster.new_client()
        cluster.run_op(client.insert(b"k", b"v"))
        assert cluster.run_op(client.delete(b"k"))
        assert cluster.run_op(client.search(b"k")) is None

    def test_delete_visible_to_cached_reader(self, cluster):
        a, b = cluster.new_client(), cluster.new_client()
        cluster.run_op(a.insert(b"k", b"v"))
        assert cluster.run_op(b.search(b"k")) == b"v"
        cluster.run_op(a.delete(b"k"))
        assert cluster.run_op(b.search(b"k")) is None

    def test_cross_client_update_visible(self, cluster):
        a, b = cluster.new_client(), cluster.new_client()
        cluster.run_op(a.insert(b"k", b"v1"))
        cluster.run_op(b.search(b"k"))
        cluster.run_op(a.update(b"k", b"v2"))
        assert cluster.run_op(b.search(b"k")) == b"v2"

    def test_lock_released_after_ops(self, cluster):
        client = cluster.new_client()
        cluster.run_op(client.insert(b"k", b"v"))
        cluster.run_op(client.update(b"k", b"w"))
        bucket = cluster.bucket_of(b"k")
        lock = cluster.fabric.node(0).read_word(cluster.bucket_addr(bucket))
        assert lock == 0

    def test_concurrent_updates_serialize_on_lock(self, cluster):
        clients = [cluster.new_client() for _ in range(4)]
        seed = cluster.new_client()
        cluster.run_op(seed.insert(b"hot", b"init"))
        env = cluster.env
        oks = []

        def updater(i, c):
            ok = yield from c.update(b"hot", f"v{i}".encode())
            oks.append(ok)

        procs = [env.process(updater(i, c)) for i, c in enumerate(clients)]
        env.run(until=env.all_of(procs))
        assert all(oks)
        assert sum(c.lock_spins for c in clients) > 0
        final = cluster.run_op(seed.search(b"hot"))
        assert final in {f"v{i}".encode() for i in range(4)}

    def test_replicas_hold_same_record(self, cluster):
        client = cluster.new_client()
        cluster.run_op(client.insert(b"k", b"v"))
        mn, offset = client.cache[b"k"]
        locs = cluster.record_locs(mn, offset)
        images = [bytes(cluster.fabric.node(m).memory[a:a + 64])
                  for m, a in locs]
        assert len(set(images)) == 1


class TestFig3Objects:
    def test_consensus_write(self):
        bed = ReplicatedObjectBed(replicas=2)
        obj = ConsensusReplicatedObject(bed)
        assert bed.run_op(obj.write(42))
        for mn, addr in bed.replica_locs():
            assert bed.fabric.node(mn).read_word(addr) == 42

    def test_consensus_serializes_on_leader(self):
        bed = ReplicatedObjectBed(replicas=2)
        obj = ConsensusReplicatedObject(bed, leader_cores=1,
                                        sequence_cpu_us=5.0)
        env = bed.env
        finishes = []

        def writer(i):
            yield from obj.write(i)
            finishes.append(env.now)

        procs = [env.process(writer(i)) for i in range(4)]
        env.run(until=env.all_of(procs))
        assert finishes[-1] >= 20.0  # 4 x 5us sequencing, serialized

    def test_lock_write(self):
        bed = ReplicatedObjectBed(replicas=2)
        obj = LockReplicatedObject(bed)
        assert bed.run_op(obj.write(7, owner=1))
        for mn, addr in bed.replica_locs():
            assert bed.fabric.node(mn).read_word(addr) == 7
        assert bed.fabric.node(0).read_word(0) == 0  # lock released

    def test_lock_mutual_exclusion(self):
        bed = ReplicatedObjectBed(replicas=2)
        obj = LockReplicatedObject(bed)
        env = bed.env
        done = []

        def writer(i):
            yield from obj.write(100 + i, owner=i + 1)
            done.append(i)

        procs = [env.process(writer(i)) for i in range(6)]
        env.run(until=env.all_of(procs))
        assert len(done) == 6
        values = {bed.fabric.node(mn).read_word(addr)
                  for mn, addr in bed.replica_locs()}
        assert len(values) == 1

    def test_snapshot_object(self):
        bed = ReplicatedObjectBed(replicas=3)
        obj = SnapshotReplicatedObject(bed)
        assert bed.run_op(obj.write(5))
        values = {bed.fabric.node(mn).read_word(addr)
                  for mn, addr in bed.replica_locs()}
        assert values == {5}

    def test_snapshot_concurrent(self):
        bed = ReplicatedObjectBed(replicas=3)
        obj = SnapshotReplicatedObject(bed)
        env = bed.env

        def writer(i):
            yield env.timeout(i * 0.1)
            yield from obj.write(100 + i)

        procs = [env.process(writer(i)) for i in range(5)]
        env.run(until=env.all_of(procs))
        values = {bed.fabric.node(mn).read_word(addr)
                  for mn, addr in bed.replica_locs()}
        assert len(values) == 1
