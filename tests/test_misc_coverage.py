"""Targeted tests for remaining cold paths across modules."""

import pytest

from repro.core import FuseeCluster
from repro.core.race import SlotRef
from repro.core.snapshot import snapshot_read
from repro.harness.experiments import ExperimentResult
from repro.harness.report import render
from repro.rdma import Fabric, FabricConfig, MemoryNode
from repro.sim import Environment
from tests.conftest import small_config, run


class TestSnapshotReadEdges:
    def test_r1_primary_crash_unresolvable(self):
        env = Environment()
        fabric = Fabric(env, FabricConfig())
        fabric.add_node(MemoryNode(env, 0, capacity=64))
        fabric.node(0).crash()
        ref = SlotRef(subtable=0, slot_index=0, placement=((0, 0),))

        def reader():
            return (yield from snapshot_read(fabric, ref))

        result = env.run(until=env.process(reader()))
        assert result.value is None
        assert result.rtts == 1

    def test_all_replicas_crashed(self):
        env = Environment()
        fabric = Fabric(env, FabricConfig())
        for mn in range(2):
            fabric.add_node(MemoryNode(env, mn, capacity=64))
            fabric.node(mn).crash()
        ref = SlotRef(subtable=0, slot_index=0,
                      placement=((0, 0), (1, 0)))

        def reader():
            return (yield from snapshot_read(fabric, ref))

        result = env.run(until=env.process(reader()))
        assert result.value is None


class TestMasterFailQuery:
    def test_resolves_value_without_failure(self):
        """fail_query on a healthy subtable just reads the primary."""
        cluster = FuseeCluster(small_config())
        client = cluster.new_client()
        run(cluster, client.insert(b"k", b"v"))
        entry = client.cache.peek(b"k")
        ref = entry.slot_ref

        def proc():
            return (yield from cluster.master.fail_query(ref, 0))

        value = run(cluster, proc())
        assert value == entry.slot_word

    def test_resolves_after_primary_crash(self):
        cluster = FuseeCluster(small_config(n_memory_nodes=3,
                                            replication_factor=2))
        client = cluster.new_client()
        run(cluster, client.insert(b"k", b"v"))
        entry = client.cache.peek(b"k")
        ref = entry.slot_ref
        cluster.fabric.node(ref.primary()[0]).crash()

        def proc():
            return (yield from cluster.master.fail_query(ref,
                                                         entry.slot_word))

        value = run(cluster, proc())
        assert value == entry.slot_word  # repaired replicas still hold it


class TestExperimentResultFormat:
    def test_none_cells_rendered(self):
        result = ExperimentResult("x", "t", ["a", "b"], [[1, None]])
        formatted = result.format()
        assert "None" in formatted

    def test_render_chart_via_dispatch(self):
        result = ExperimentResult("fig", "timeline",
                                  ["bucket", "t_us", "mops"],
                                  [[0, 0.0, 1.0], [1, 10.0, 2.0]])
        chart = render(result, "chart")
        assert "t=0us" in chart and "#" in chart

    def test_format_without_notes(self):
        result = ExperimentResult("x", "t", ["a"], [[1]])
        assert "note:" not in result.format()


class TestClusterRun:
    def test_run_until_none_drains_queue(self):
        cluster = FuseeCluster(small_config())
        # the master detector loops forever, so drain-until-empty is not
        # available; run to a time instead
        cluster.run(until=cluster.env.now + 50.0)
        assert cluster.env.now >= 50.0

    def test_run_op_returns_value(self):
        cluster = FuseeCluster(small_config())

        def proc():
            yield cluster.env.timeout(1.0)
            return "done"

        assert cluster.run_op(proc()) == "done"


class TestClientStatsAccounting:
    def test_ops_counted(self):
        cluster = FuseeCluster(small_config())
        client = cluster.new_client()
        run(cluster, client.insert(b"k", b"v"))
        run(cluster, client.search(b"k"))
        run(cluster, client.update(b"k", b"w"))
        run(cluster, client.delete(b"k"))
        assert client.stats.ops == {"insert": 1, "search": 1,
                                    "update": 1, "delete": 1}

    def test_outcomes_counted(self):
        cluster = FuseeCluster(small_config())
        client = cluster.new_client()
        run(cluster, client.insert(b"k", b"v"))
        assert sum(client.stats.outcomes.values()) >= 1

    def test_cache_stats_move(self):
        cluster = FuseeCluster(small_config())
        client = cluster.new_client()
        run(cluster, client.insert(b"k", b"v"))
        run(cluster, client.search(b"k"))
        assert client.cache.stats.hits >= 1


class TestFacadeEdge:
    def test_insert_empty_key_roundtrip(self):
        """Zero-length keys are legal wire-format-wise."""
        from repro.core import FuseeKV
        kv = FuseeKV(small_config())
        assert kv.insert(b"\x00", b"nul-key")
        assert kv.search(b"\x00") == b"nul-key"
