"""RACE extendible index expansion (directory splits via the master).

The FUSEE paper leaves replicated resizing undefined; this repository
implements it as a master-coordinated per-subtable split reusing the
failover barrier machinery (see DESIGN.md).  These tests cover the pure
directory math and the full end-to-end split.
"""

import pytest

from repro.core import FuseeCluster
from repro.core.race import RaceConfig, RaceHashing, hash_key
from tests.conftest import small_config, run


def tiny_index_config(**kw):
    return small_config(
        race=RaceConfig(n_subtables=2, n_groups=2, slots_per_bucket=2),
        **kw)


def make_race(n=4):
    config = RaceConfig(n_subtables=n, n_groups=8, slots_per_bucket=2)
    placements = {i: [(0, i * config.subtable_bytes)] for i in range(n)}
    return RaceHashing(config, placements)


class TestDirectoryMath:
    def test_initial_directory_identity(self):
        race = make_race(4)
        assert race.directory == [0, 1, 2, 3]
        assert race.global_depth == 2
        for table in range(4):
            assert race.local_depth(table) == 2
        race.check_directory_invariants()

    def test_split_at_global_depth_doubles_directory(self):
        race = make_race(2)
        new_id, directory, _router = race.staged_split(0)
        assert new_id == 2
        assert len(directory) == 4
        # suffix addressing: entries 0 and 2 pointed at table 0; entry 2
        # (bit 1 set) moves to the new table
        assert directory == [0, 1, 2, 1]

    def test_split_below_global_depth_reuses_directory(self):
        race = make_race(2)
        new_id, directory, _ = race.staged_split(0)
        race.commit_split(0, new_id, directory, [(0, 999)])
        race.check_directory_invariants()
        # table 1 still has local depth 1 < global depth 2: splitting it
        # must not double the directory again
        new_id2, directory2, _ = race.staged_split(1)
        assert len(directory2) == 4
        assert directory2 == [0, new_id2 if directory2[1] == new_id2
                              else 1, 2, directory2[3]]

    def test_commit_updates_depths(self):
        race = make_race(2)
        new_id, directory, _ = race.staged_split(0)
        race.commit_split(0, new_id, directory, [(0, 999)])
        assert race.local_depth(0) == 2
        assert race.local_depth(new_id) == 2
        assert race.local_depth(1) == 1
        race.check_directory_invariants()

    def test_router_partitions_digests(self):
        race = make_race(2)
        new_id, _directory, router = race.staged_split(0)
        for i in range(2000):
            digest = hash_key(f"k{i}".encode())
            before = race.table_for_digest(digest)
            after = router(digest)
            if before == 1:
                assert after == 1  # untouched table unaffected
            else:
                assert after in (0, new_id)

    def test_repeated_splits_keep_invariants(self):
        race = make_race(2)
        import random
        rng = random.Random(3)
        for _ in range(6):
            target = rng.choice(race.physical_tables())
            new_id, directory, _ = race.staged_split(target)
            race.commit_split(target, new_id, directory, [(0, new_id)])
            race.check_directory_invariants()
        assert len(race.physical_tables()) == 8

    def test_unknown_table_rejected(self):
        with pytest.raises(ValueError):
            make_race(2).staged_split(99)


class TestEndToEndExpansion:
    def test_inserts_beyond_capacity_trigger_splits(self):
        cluster = FuseeCluster(tiny_index_config())
        client = cluster.new_client()
        n = 120  # far beyond 2 subtables x 2 groups x candidate slots
        for i in range(n):
            result = run(cluster, client.insert(f"grow-{i}".encode(),
                                                f"v-{i}".encode()))
            assert result.ok, f"insert {i} failed"
        assert cluster.master.splits_performed >= 1
        cluster.race.check_directory_invariants()
        for i in range(n):
            result = run(cluster, client.search(f"grow-{i}".encode()))
            assert result.ok and result.value == f"v-{i}".encode()

    def test_expansion_preserves_updates_and_deletes(self):
        cluster = FuseeCluster(tiny_index_config())
        client = cluster.new_client()
        for i in range(90):
            assert run(cluster, client.insert(f"g-{i}".encode(), b"v")).ok
        assert cluster.master.splits_performed >= 1
        for i in range(0, 90, 3):
            assert run(cluster, client.update(f"g-{i}".encode(), b"w")).ok
        for i in range(1, 90, 3):
            assert run(cluster, client.delete(f"g-{i}".encode())).ok
        for i in range(90):
            result = run(cluster, client.search(f"g-{i}".encode()))
            if i % 3 == 0:
                assert result.value == b"w"
            elif i % 3 == 1:
                assert not result.ok
            else:
                assert result.value == b"v"

    def test_split_replicates_new_subtable(self):
        cluster = FuseeCluster(tiny_index_config(n_memory_nodes=3,
                                                 replication_factor=2))
        client = cluster.new_client()
        for i in range(100):
            assert run(cluster, client.insert(f"r-{i}".encode(), b"v")).ok
        assert cluster.master.splits_performed >= 1
        for table in cluster.race.physical_tables():
            placement = cluster.race.placement(table)
            assert len(placement) >= 1
            images = [bytes(cluster.fabric.node(mn).memory[
                base:base + cluster.race.config.subtable_bytes])
                for mn, base in placement]
            assert all(img == images[0] for img in images)

    def test_expansion_with_concurrent_readers(self):
        cluster = FuseeCluster(tiny_index_config())
        writer = cluster.new_client()
        reader = cluster.new_client()
        for i in range(20):
            run(cluster, writer.insert(f"c-{i}".encode(), b"v"))
        env = cluster.env
        read_results = []

        def read_loop():
            for _ in range(120):
                yield env.timeout(3.0)
                result = yield from reader.search(b"c-7")
                read_results.append(result)

        def write_loop():
            for i in range(20, 110):
                result = yield from writer.insert(f"c-{i}".encode(), b"v")
                assert result.ok

        env.run(until=env.all_of([env.process(read_loop()),
                                  env.process(write_loop())]))
        assert cluster.master.splits_performed >= 1
        assert all(r.ok and r.value == b"v" for r in read_results)

    def test_expansion_after_mn_failover(self):
        cluster = FuseeCluster(tiny_index_config(n_memory_nodes=3,
                                                 replication_factor=2))
        client = cluster.new_client()
        for i in range(20):
            run(cluster, client.insert(f"f-{i}".encode(), b"v"))
        cluster.crash_memory_node(1)
        cluster.run(until=cluster.env.now
                    + cluster.config.master.lease_us * 4)
        for i in range(20, 110):
            assert run(cluster, client.insert(f"f-{i}".encode(), b"v")).ok
        for i in range(110):
            assert run(cluster, client.search(f"f-{i}".encode())).ok
